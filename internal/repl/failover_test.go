package repl_test

// Failover suite: the self-healing fleet under primary loss. A real primary,
// real replicas (fleet control enabled, so they can be promoted/demoted/
// re-targeted over HTTP), and a router with the health monitor and the
// promotion supervisor running. The tests kill or partition the primary and
// assert the tentpole invariants:
//
//	(a) the fleet recovers without operator intervention: the router detects
//	    the loss, promotes the most-caught-up replica under a fresh fenced
//	    fleet epoch, re-targets the survivors, and writes flow again —
//	    bounded by the test clock, measured as time-to-recovery;
//	(b) during the election window reads keep flowing and writes answer a
//	    typed 503 no_primary with Retry-After, never hang;
//	(c) split-brain is fenced: a blackholed (not killed) primary that comes
//	    back refuses routed writes stamped with the new fleet epoch
//	    (409 epoch_fenced), is demoted into the new lineage, and its
//	    acked-but-unshipped writes vanish — the documented failure model;
//	(d) after every storm the surviving fleet converges to bit-equality
//	    (graph, cores, CL-tree, truss, ACQ answers via dyntest).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/chaos"
	"cexplorer/internal/dyntest"
	"cexplorer/internal/gen"
	"cexplorer/internal/repl"
	"cexplorer/internal/server"
)

// fleetNode is one fleet-control-enabled server under test (either role).
type fleetNode struct {
	exp *api.Explorer
	srv *server.Server
	ts  *httptest.Server
}

// fleetControl builds the tailer factory a fleet node uses at boot and on
// demotion — the test-speed mirror of the wiring in cmd/cexplorer.
func fleetControl(t *testing.T, exp *api.Explorer, tail func() repl.ReplicaOptions) server.FleetControl {
	return server.FleetControl{
		StartTailer: func(primaryURL string) (server.ReplicaSource, func()) {
			opt := tail()
			opt.Logf = t.Logf
			rep := repl.NewReplica(exp, primaryURL, opt)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				rep.Run(ctx)
			}()
			return rep, func() {
				cancel()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
				}
			}
		},
		Feed:        repl.FeedOptions{},
		ReplicaWait: 5 * time.Second,
	}
}

func startFleetPrimary(t *testing.T, tail func() repl.ReplicaOptions) *fleetNode {
	t.Helper()
	exp := api.NewExplorer()
	srv := server.New(exp, t.Logf)
	srv.EnableFleet(fleetControl(t, exp, tail))
	srv.EnableReplicationPrimary(repl.FeedOptions{})
	ts := httptest.NewServer(srv.Handler())
	n := &fleetNode{exp: exp, srv: srv, ts: ts}
	t.Cleanup(func() { n.shutdown(); ts.Close() })
	return n
}

func startFleetReplica(t *testing.T, primaryURL string, tail func() repl.ReplicaOptions) *fleetNode {
	t.Helper()
	exp := api.NewExplorer()
	srv := server.New(exp, t.Logf)
	srv.EnableFleet(fleetControl(t, exp, tail))
	srv.StartFleetReplica(primaryURL)
	ts := httptest.NewServer(srv.Handler())
	n := &fleetNode{exp: exp, srv: srv, ts: ts}
	t.Cleanup(func() { n.shutdown(); ts.Close() })
	return n
}

// shutdown stops the node's tailer (whatever role it holds by now) and
// drains its feed, bounded.
func (n *fleetNode) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
}

// startFleetRouter runs a self-healing router over the fleet at test cadence.
func startFleetRouter(t *testing.T, primaryURL string, replicas []string, promote bool) (*repl.Router, *httptest.Server) {
	t.Helper()
	rt := repl.NewRouter(primaryURL, replicas, repl.RouterOptions{
		Client: &http.Client{Timeout: 5 * time.Second},
		Logf:   t.Logf,
	})
	rt.EnableSelfHealing(repl.SelfHealOptions{
		Monitor: repl.MonitorOptions{
			Interval:      25 * time.Millisecond,
			Timeout:       250 * time.Millisecond,
			FailThreshold: 3,
			BackoffMax:    200 * time.Millisecond,
			Logf:          t.Logf,
		},
		Promote: promote,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go rt.Run(ctx)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { cancel(); ts.Close() })
	return rt, ts
}

// postOne posts a single mutation and reports (status, envelope code,
// Retry-After, version) without failing the test — outage windows are the
// point here.
func postOne(t *testing.T, client *http.Client, baseURL, name string, m api.Mutation) (status int, code, retryAfter string, version uint64) {
	t.Helper()
	payload, _ := json.Marshal(m)
	req, err := http.NewRequest("POST", baseURL+"/api/v1/datasets/"+name+"/mutations", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", "", 0
	}
	defer resp.Body.Close()
	var out struct {
		Version uint64 `json:"version"`
		Code    string `json:"code"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out.Code, resp.Header.Get("Retry-After"), out.Version
}

// waitEpoch polls the router until its fleet epoch reaches want.
func waitEpoch(t *testing.T, rt *repl.Router, want uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if rt.Stats().FleetEpoch >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("router never reached fleet epoch %d (stats %+v)", want, rt.Stats())
}

// waitRole polls a node until it reports the wanted role.
func waitRole(t *testing.T, n *fleetNode, want string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if n.srv.Role() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %s never became %q (still %q)", n.ts.URL, want, n.srv.Role())
}

// TestFailoverPromotesMostCaughtUpReplica is the tentpole acceptance test:
// kill the primary under write load and the fleet must recover on its own —
// a replica is promoted at fleet epoch 2, the survivor re-targets, writes
// succeed again within the recovery bound, and the fleet converges
// bit-equal on the new lineage.
func TestFailoverPromotesMostCaughtUpReplica(t *testing.T) {
	p := startFleetPrimary(t, fastTail)
	base := gen.GNMAttributed(40, 90, 4, 9)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	r1 := startFleetReplica(t, p.ts.URL, fastTail)
	r2 := startFleetReplica(t, p.ts.URL, fastTail)
	rt, rts := startFleetRouter(t, p.ts.URL, []string{r1.ts.URL, r2.ts.URL}, true)

	ops := dyntest.GenOps(base, 80, 7)
	v := postMutations(t, rts.URL, "dyn", ops[:20])
	waitForConvergence(t, p.exp, r1.exp, "dyn", v)
	waitForConvergence(t, p.exp, r2.exp, "dyn", v)

	// Kill the primary (listener down: connection refused, the clean death).
	p.ts.Close()
	killed := time.Now()

	// Drive single-op writes until one lands. Every failure during the
	// outage must be typed and bounded, never a hang.
	client := &http.Client{Timeout: 3 * time.Second}
	var (
		recovered     time.Duration
		sawNoPrimary  bool
		next          = 20
		outageWrites  int
		deadline      = time.Now().Add(30 * time.Second)
		firstRecovery uint64
	)
	for time.Now().Before(deadline) {
		status, code, retryAfter, version := postOne(t, client, rts.URL, "dyn", ops[next])
		if status == http.StatusOK {
			recovered = time.Since(killed)
			firstRecovery = version
			next++
			break
		}
		outageWrites++
		if status == http.StatusServiceUnavailable {
			if code != repl.CodeNoPrimary {
				t.Fatalf("outage 503 carried code %q, want %q", code, repl.CodeNoPrimary)
			}
			if retryAfter == "" {
				t.Fatalf("outage 503 no_primary missing Retry-After")
			}
			sawNoPrimary = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if recovered == 0 {
		t.Fatalf("writes never recovered after primary loss (%d failed attempts)", outageWrites)
	}
	t.Logf("write path recovered in %s (%d failed writes during outage, no_primary observed: %v)",
		recovered.Round(time.Millisecond), outageWrites, sawNoPrimary)
	if recovered > 15*time.Second {
		t.Fatalf("recovery took %s, want < 15s", recovered)
	}

	// The election must have fenced a fresh epoch and promoted a replica.
	st := rt.Stats()
	if st.FleetEpoch != 2 {
		t.Fatalf("fleet epoch after failover = %d, want 2", st.FleetEpoch)
	}
	if st.Promotions < 1 {
		t.Fatalf("router recorded no promotion: %+v", st)
	}
	var winner, survivor *fleetNode
	switch st.Primary {
	case r1.ts.URL:
		winner, survivor = r1, r2
	case r2.ts.URL:
		winner, survivor = r2, r1
	default:
		t.Fatalf("router primary %q is neither replica", st.Primary)
	}
	if got := winner.srv.Role(); got != "primary" {
		t.Fatalf("promoted node role = %q, want primary", got)
	}

	// Post the rest of the workload through the router and require the
	// survivor to converge bit-equal on the new primary's lineage.
	v = firstRecovery
	if next < len(ops) {
		v = postMutations(t, rts.URL, "dyn", ops[next:])
	}
	waitForConvergence(t, winner.exp, survivor.exp, "dyn", v)
}

// TestRouterNoPrimary503 pins the election-window write contract in its
// steady state: with promotion disabled (detection without the coup), a dead
// primary means every routed write answers the typed, retryable 503 while
// reads keep flowing off the replicas.
func TestRouterNoPrimary503(t *testing.T) {
	p := startFleetPrimary(t, fastTail)
	if _, err := p.exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	r1 := startFleetReplica(t, p.ts.URL, fastTail)
	rt, rts := startFleetRouter(t, p.ts.URL, []string{r1.ts.URL}, false)

	v := postMutations(t, rts.URL, "fig5", []api.Mutation{{Op: api.OpAddEdge, U: 0, V: 5}})
	waitForConvergence(t, p.exp, r1.exp, "fig5", v)

	p.ts.Close()

	// Once the breaker opens, writes fail fast with the typed 503.
	client := &http.Client{Timeout: 3 * time.Second}
	deadline := time.Now().Add(10 * time.Second)
	got503 := false
	for time.Now().Before(deadline) {
		status, code, retryAfter, _ := postOne(t, client, rts.URL, "fig5", api.Mutation{Op: api.OpAddEdge, U: 1, V: 4})
		if status == http.StatusServiceUnavailable {
			if code != repl.CodeNoPrimary {
				t.Fatalf("503 code %q, want %q", code, repl.CodeNoPrimary)
			}
			if retryAfter == "" {
				t.Fatal("503 no_primary missing Retry-After")
			}
			got503 = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !got503 {
		t.Fatal("router never answered 503 no_primary for writes against a dead primary")
	}
	if rt.Stats().NoPrimary == 0 {
		t.Fatalf("noPrimary counter never moved: %+v", rt.Stats())
	}

	// Reads keep flowing: the replica serves the dataset through the router.
	resp, err := client.Get(rts.URL + "/api/v1/datasets/fig5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read during headless window: status %d, want 200", resp.StatusCode)
	}
	// Promotion was disabled, so nobody was crowned.
	if st := rt.Stats(); st.Promotions != 0 {
		t.Fatalf("promotion happened with Promote=false: %+v", st)
	}

	// The router identifies itself on the same health endpoint every node
	// serves, so fleet tooling can probe it without special-casing.
	hresp, err := client.Get(rts.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var rh repl.HealthStatus
	if err := json.NewDecoder(hresp.Body).Decode(&rh); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if rh.Role != "router" || rh.Primary != p.ts.URL {
		t.Fatalf("router health: role %q primary %q, want router %q", rh.Role, rh.Primary, p.ts.URL)
	}
}

// TestBlackholedPrimaryFencedAndDemoted is the split-brain regression: the
// primary is partitioned (blackholed, not killed), the fleet promotes around
// it, and when the partition heals the old primary (a) refuses writes
// stamped with the new fleet epoch — it can never double-ack a routed write
// — (b) is demoted into the new lineage, and (c) loses the writes it acked
// while partitioned (the documented async-replication failure model).
func TestBlackholedPrimaryFencedAndDemoted(t *testing.T) {
	p := startFleetPrimary(t, chaosTail)
	base := gen.GNMAttributed(30, 60, 4, 3)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	px, err := chaos.NewProxy(p.ts.URL, nil, chaosProxyOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	r1 := startFleetReplica(t, px.URL(), chaosTail)
	r2 := startFleetReplica(t, px.URL(), chaosTail)
	rt, rts := startFleetRouter(t, px.URL(), []string{r1.ts.URL, r2.ts.URL}, true)

	ops := dyntest.GenOps(base, 40, 11)
	v := postMutations(t, rts.URL, "dyn", ops[:10])
	waitForConvergence(t, p.exp, r1.exp, "dyn", v)
	waitForConvergence(t, p.exp, r2.exp, "dyn", v)

	// Partition: the primary drops off the fleet's network but stays alive.
	px.Force(chaos.Blackhole)
	waitEpoch(t, rt, 2, 20*time.Second)

	// Split-brain guard: a write stamped with the new fleet epoch must be
	// refused by the old primary (it is still at epoch 1) — 409, unapplied.
	before, _ := p.exp.Dataset("dyn")
	beforeV := before.Version
	payload, _ := json.Marshal(api.Mutation{Op: api.OpAddEdge, U: 2, V: 7})
	req, _ := http.NewRequest("POST", p.ts.URL+"/api/v1/datasets/dyn/mutations", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(repl.HeaderFleetEpoch, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Code string `json:"code"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || env.Code != repl.CodeEpochFenced {
		t.Fatalf("stamped write on stale primary: status %d code %q, want 409 %q",
			resp.StatusCode, env.Code, repl.CodeEpochFenced)
	}
	if after, _ := p.exp.Dataset("dyn"); after.Version != beforeV {
		t.Fatalf("fenced write was applied: version %d → %d", beforeV, after.Version)
	}

	// The failure model's lost write: an UNstamped direct write is still
	// acked by the partitioned primary — and must vanish after demotion.
	status, _, _, _ := postOne(t, http.DefaultClient, p.ts.URL, "dyn", api.Mutation{Op: api.OpAddVertex, Name: "ghost"})
	if status != http.StatusOK {
		t.Fatalf("unstamped write on partitioned primary: status %d, want 200 (the documented lost-write window)", status)
	}

	// Heal the partition: supervision must demote the stale primary into a
	// replica of the new lineage.
	px.Restore()
	waitRole(t, p, "replica", 20*time.Second)
	if rt.Stats().Demotions < 1 {
		t.Fatalf("router recorded no demotion: %+v", rt.Stats())
	}

	// The fleet converges on the new lineage — including the old primary,
	// whose ghost write is gone.
	st := rt.Stats()
	var winner *fleetNode
	switch st.Primary {
	case r1.ts.URL:
		winner = r1
	case r2.ts.URL:
		winner = r2
	default:
		t.Fatalf("router primary %q is neither replica", st.Primary)
	}
	v = postMutations(t, rts.URL, "dyn", ops[10:20])
	waitForConvergence(t, winner.exp, p.exp, "dyn", v)
	pds, _ := p.exp.Dataset("dyn")
	if _, ok := pds.Graph.VertexByName("ghost"); ok {
		t.Fatal("acked-but-unshipped write survived demotion; the new primary's lineage must win")
	}
}

// TestMonitorBreakerTransitions drives the circuit breaker through its full
// cycle against a toggleable health endpoint: closed → (K failures) open →
// (backoff elapses, success) half-open → (success) closed, with the half-open
// → open snap on a relapse in between.
// TestMonitorDefaults pins the zero-option constructor: every knob gets a
// sane default, unknown nodes are available (innocent until probed), and one
// failed probe against a dead address neither opens the breaker nor invents
// health data.
func TestMonitorDefaults(t *testing.T) {
	m := repl.NewMonitor(repl.MonitorOptions{})
	if !m.Available("http://never-probed") {
		t.Fatal("unknown node must be available")
	}
	if st := m.State("http://never-probed"); st != repl.StateClosed {
		t.Fatalf("unknown node state %v, want closed", st)
	}
	const dead = "http://127.0.0.1:1"
	m.Add(dead)
	m.Add(dead) // idempotent
	m.ProbeOnce(context.Background())
	if st := m.State(dead); st != repl.StateClosed {
		t.Fatalf("one failure moved the breaker to %v, want closed (threshold defaults to 3)", st)
	}
	if h := m.Health(dead); h != nil {
		t.Fatalf("failed probe produced health data: %+v", h)
	}
	st := m.Stats()
	if st.Probes != 1 || st.Failures != 1 || st.Opens != 0 {
		t.Fatalf("stats after one failed probe: %+v", st)
	}
	if np, ok := st.Nodes[dead]; !ok || np.LastErr == "" {
		t.Fatalf("node probe view missing the failure: %+v", st.Nodes)
	}
}

func TestMonitorBreakerTransitions(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(repl.HealthStatus{Role: "replica"})
	}))
	defer hs.Close()

	m := repl.NewMonitor(repl.MonitorOptions{
		Interval:      10 * time.Millisecond,
		Timeout:       250 * time.Millisecond,
		FailThreshold: 3,
		BackoffMax:    100 * time.Millisecond,
		Logf:          t.Logf,
	})
	m.Add(hs.URL)
	ctx := context.Background()

	check := func(step string, want repl.BreakerState, available bool) {
		t.Helper()
		if got := m.State(hs.URL); got != want {
			t.Fatalf("%s: state %v, want %v", step, got, want)
		}
		if got := m.Available(hs.URL); got != available {
			t.Fatalf("%s: available %v, want %v", step, got, available)
		}
	}

	m.ProbeOnce(ctx)
	check("healthy", repl.StateClosed, true)
	if m.Health(hs.URL) == nil {
		t.Fatal("no health payload cached after a successful probe")
	}

	healthy.Store(false)
	m.ProbeOnce(ctx)
	m.ProbeOnce(ctx)
	check("two failures", repl.StateClosed, true) // under threshold: still in
	m.ProbeOnce(ctx)
	check("third failure", repl.StateOpen, false)

	// Open nodes are only re-probed after backoff; an immediate round skips.
	m.ProbeOnce(ctx)
	check("open, before due", repl.StateOpen, false)

	// Recovery: after backoff one good probe half-opens, a second closes.
	healthy.Store(true)
	time.Sleep(50 * time.Millisecond)
	m.ProbeOnce(ctx)
	check("first success", repl.StateHalfOpen, true)

	// Relapse from half-open snaps straight back to open.
	healthy.Store(false)
	m.ProbeOnce(ctx)
	check("half-open relapse", repl.StateOpen, false)

	healthy.Store(true)
	time.Sleep(50 * time.Millisecond)
	m.ProbeOnce(ctx)
	check("recovered to half-open", repl.StateHalfOpen, true)
	m.ProbeOnce(ctx)
	check("recovered to closed", repl.StateClosed, true)

	st := m.Stats()
	if st.Probes == 0 || st.Failures == 0 || st.Opens < 2 {
		t.Fatalf("monitor stats %+v", st)
	}
}
