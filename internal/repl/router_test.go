package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync/atomic"
	"testing"

	"cexplorer/internal/chaos"
)

func TestDatasetFromPath(t *testing.T) {
	cases := []struct {
		path, want string
	}{
		{"/api/v1/datasets/dblp", "dblp"},
		{"/api/v1/datasets/dblp/search", "dblp"},
		{"/api/v1/datasets/dblp/vertices/42", "dblp"},
		{"/api/v1/datasets/my%20set/journal", "my set"},
		{"/api/v1/datasets/", ""},
		{"/api/v1/datasets", ""},
		{"/api/stats", ""},
		{"/", ""},
	}
	for _, c := range cases {
		if got := DatasetFromPath(c.path); got != c.want {
			t.Errorf("DatasetFromPath(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

// TestRouterAffinity: the ring gives each dataset a stable home replica and
// a full-preference failover order covering every replica exactly once.
func TestRouterAffinity(t *testing.T) {
	replicas := []string{"http://r0", "http://r1", "http://r2"}
	rt := NewRouter("http://p", replicas, RouterOptions{})
	homes := map[int]int{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("dataset-%d", i)
		order := rt.replicaOrder(name)
		if len(order) != len(replicas) {
			t.Fatalf("order for %s covers %d replicas", name, len(order))
		}
		sorted := slices.Clone(order)
		slices.Sort(sorted)
		if !slices.Equal(sorted, []int{0, 1, 2}) {
			t.Fatalf("order for %s = %v: not a permutation", name, order)
		}
		if again := rt.replicaOrder(name); !slices.Equal(order, again) {
			t.Fatalf("order for %s unstable: %v then %v", name, order, again)
		}
		homes[order[0]]++
	}
	// 64 datasets over 3 replicas with 64 vnodes each: every replica should
	// be home to someone (balance, not perfection).
	for i := range replicas {
		if homes[i] == 0 {
			t.Fatalf("replica %d is home to no dataset: %v", i, homes)
		}
	}
}

// echoNode runs a test upstream that records hits and answers with its own
// tag, optionally failing with a fixed status.
type echoNode struct {
	ts     *httptest.Server
	hits   atomic.Int64
	status atomic.Int64 // 0 = 200 + tag body
	tag    string
}

func newEchoNode(tag string) *echoNode {
	n := &echoNode{tag: tag}
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		if st := n.status.Load(); st != 0 {
			w.WriteHeader(int(st))
			fmt.Fprintf(w, `{"error":"down","code":"replica_lagging"}`)
			return
		}
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s %s len=%d", n.tag, r.Method, r.URL.Path, len(body))
	}))
	return n
}

func TestRouterRoutesWritesToPrimaryAndReadsToReplicas(t *testing.T) {
	p := newEchoNode("primary")
	r0 := newEchoNode("r0")
	r1 := newEchoNode("r1")
	defer p.ts.Close()
	defer r0.ts.Close()
	defer r1.ts.Close()
	rt := NewRouter(p.ts.URL, []string{r0.ts.URL, r1.ts.URL}, RouterOptions{})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get(HeaderServedBy)
	}

	// Writes always land on the primary.
	resp, err := http.Post(front.URL+"/api/v1/datasets/d/mutations", "application/json", strings.NewReader(`{"op":"addEdge","u":1,"v":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p.hits.Load() != 1 || r0.hits.Load()+r1.hits.Load() != 0 {
		t.Fatalf("mutation routed off-primary: p=%d r0=%d r1=%d", p.hits.Load(), r0.hits.Load(), r1.hits.Load())
	}

	// Shipping (replication-internal) goes to the primary too.
	get("/api/v1/datasets/d/journal?fromSeq=1")
	if p.hits.Load() != 2 {
		t.Fatalf("journal request routed off-primary")
	}

	// Dataset reads go to the home replica, stably.
	body1, served1 := get("/api/v1/datasets/d/vertices/1")
	_, served2 := get("/api/v1/datasets/d/vertices/2")
	if served1 != served2 {
		t.Fatalf("read affinity broken: %q then %q", served1, served2)
	}
	if strings.HasPrefix(body1, "primary:") {
		t.Fatalf("read served by primary while replicas healthy: %q", body1)
	}
	if p.hits.Load() != 2 {
		t.Fatalf("reads leaked to primary: %d hits", p.hits.Load())
	}

	// Non-dataset paths pass through to the primary.
	get("/api/v1/datasets")
	if p.hits.Load() != 3 {
		t.Fatalf("dataset listing not passed through to primary")
	}

	s := rt.Stats()
	if s.Writes != 1 || s.Reads != 2 || s.Proxied != 2 {
		t.Fatalf("router stats %+v", s)
	}
}

func TestRouterFailover(t *testing.T) {
	p := newEchoNode("primary")
	r0 := newEchoNode("r0")
	r1 := newEchoNode("r1")
	defer p.ts.Close()
	defer r0.ts.Close()
	defer r1.ts.Close()

	// Both replicas answer 503 (lagging): the read must end at the primary.
	r0.status.Store(503)
	r1.status.Store(503)
	rt := NewRouter(p.ts.URL, []string{r0.ts.URL, r1.ts.URL}, RouterOptions{})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/api/v1/datasets/d/core")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body), "primary:") {
		t.Fatalf("lagging replicas did not fail over to primary: %q", body)
	}
	if got := resp.Header.Get(HeaderServedBy); got != p.ts.URL {
		t.Fatalf("%s = %q, want %q", HeaderServedBy, got, p.ts.URL)
	}
	if rt.Stats().Failovers != 2 {
		t.Fatalf("failovers = %d, want 2", rt.Stats().Failovers)
	}

	// A dead replica (transport error) also fails over; the write path is
	// unaffected. And a POST body is replayed intact on the retry target.
	r0.ts.Close()
	r1.status.Store(0)
	resp, err = http.Post(front.URL+"/api/v1/datasets/d/search", "application/json", strings.NewReader(`{"algorithm":"ACQ","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "len=25") {
		t.Fatalf("failover dropped the request body: %q", body)
	}

	// Everything down: a typed 502.
	r1.ts.Close()
	p.ts.Close()
	resp, err = http.Get(front.URL + "/api/v1/datasets/d/core")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-down status = %d, want 502", resp.StatusCode)
	}
	var env struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Code != "bad_gateway" {
		t.Fatalf("all-down envelope code %q err %v", env.Code, err)
	}
}

// TestRouterSessionRoutesStickToHome: exploration-session routes pin to the
// dataset's home replica. A down or lagging home must surface its failure to
// the client — never a ring walk onto a node that has no idea the session
// exists and would answer session_not_found 404 to every step.
func TestRouterSessionRoutesStickToHome(t *testing.T) {
	p := newEchoNode("primary")
	r0 := newEchoNode("r0")
	r1 := newEchoNode("r1")
	defer p.ts.Close()
	defer r0.ts.Close()
	defer r1.ts.Close()
	rt := NewRouter(p.ts.URL, []string{r0.ts.URL, r1.ts.URL}, RouterOptions{})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	nodes := []*echoNode{r0, r1}
	home := nodes[rt.replicaOrder("d")[0]]
	other := nodes[1-rt.replicaOrder("d")[0]]

	post := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Post(front.URL+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Healthy home: create and step both land there.
	resp := post("/api/v1/datasets/d/explore")
	if got := resp.Header.Get(HeaderServedBy); got != home.ts.URL {
		t.Fatalf("session create served by %q, want home %q", got, home.ts.URL)
	}
	post("/api/v1/datasets/d/explore/abc/step")
	if home.hits.Load() != 2 || other.hits.Load() != 0 {
		t.Fatalf("session traffic off-home: home=%d other=%d", home.hits.Load(), other.hits.Load())
	}

	// Lagging home: the failure is relayed, not "failed over" to a node
	// that never saw the session.
	home.status.Store(503)
	resp = post("/api/v1/datasets/d/explore/abc/step")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("down-home step status = %d, want the home's own 503", resp.StatusCode)
	}
	if other.hits.Load() != 0 || p.hits.Load() != 0 {
		t.Fatalf("session request walked the ring: other=%d primary=%d", other.hits.Load(), p.hits.Load())
	}

	// Plain dataset reads on the same dataset still fail over as before.
	rresp, err := http.Get(front.URL + "/api/v1/datasets/d/core")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if got := rresp.Header.Get(HeaderServedBy); got == home.ts.URL {
		t.Fatal("plain read stuck to the lagging home")
	}
	if s := rt.Stats(); s.Sessions != 3 {
		t.Fatalf("sessions counter = %d, want 3 (stats %+v)", s.Sessions, s)
	}
}

// TestRouterRelayAbortsOnTruncatedUpstream: an upstream dying mid-body must
// tear the client connection (http.ErrAbortHandler), never complete a
// truncated body under a clean 200. The dying upstream is the chaos proxy's
// Truncate fault — the exact failure the chaos suite schedules.
func TestRouterRelayAbortsOnTruncatedUpstream(t *testing.T) {
	body := strings.Repeat("x", 64<<10)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		io.WriteString(w, body)
	}))
	defer up.Close()
	px, err := chaos.NewProxy(up.URL, chaos.Plan{{Kind: chaos.Truncate, After: 1024}}, chaos.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	rt := NewRouter(px.URL(), nil, RouterOptions{Logf: t.Logf})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/api/v1/datasets/d/core")
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && len(got) == len(body) {
		t.Fatal("truncated upstream relayed as a complete body")
	}
	if rerr == nil {
		t.Fatalf("truncated upstream relayed as a clean EOF after %d of %d bytes", len(got), len(body))
	}
	if aborts := rt.Stats().RelayAborts; aborts != 1 {
		t.Fatalf("relayAborts = %d, want 1", aborts)
	}
}

func TestRouterBodyTooLarge(t *testing.T) {
	p := newEchoNode("primary")
	defer p.ts.Close()
	rt := NewRouter(p.ts.URL, nil, RouterOptions{MaxBodyBytes: 16})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Post(front.URL+"/api/v1/datasets/d/mutations", "application/json", strings.NewReader(strings.Repeat("x", 64)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body status = %d, want 413", resp.StatusCode)
	}
	if p.hits.Load() != 0 {
		t.Fatal("oversize body reached the upstream")
	}
}

func TestRouterStatsEndpoint(t *testing.T) {
	p := newEchoNode("primary")
	defer p.ts.Close()
	rt := NewRouter(p.ts.URL, nil, RouterOptions{})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	http.Get(front.URL + "/api/v1/datasets/d/core")
	resp, err := http.Get(front.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Role != "router" || s.Primary != p.ts.URL {
		t.Fatalf("stats %+v", s)
	}
	if s.PerNode[p.ts.URL].Requests != 1 {
		t.Fatalf("per-node stats %+v", s.PerNode)
	}
}
