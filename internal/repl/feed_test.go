package repl

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cexplorer/internal/snapshot"
)

// testFeed builds a feed over a fixed lookup table.
func testFeed(opt FeedOptions, versions map[string]uint64) *Feed {
	return NewFeed(func(name string) (uint64, bool) {
		v, ok := versions[name]
		return v, ok
	}, opt)
}

func ops(n int) []snapshot.JournalOp {
	out := make([]snapshot.JournalOp, n)
	for i := range out {
		out[i] = snapshot.JournalOp{Kind: snapshot.JournalAddEdge, U: int32(i), V: int32(i + 1)}
	}
	return out
}

// shipVersions decodes the frames of a ship result into record versions.
func shipVersions(t *testing.T, res ShipResult) []uint64 {
	t.Helper()
	var vs []uint64
	for _, frame := range res.Frames {
		rec, err := snapshot.DecodeJournalFrame(frame)
		if err != nil {
			t.Fatalf("decode shipped frame: %v", err)
		}
		vs = append(vs, rec.Version)
	}
	return vs
}

func TestFeedPublishAndShip(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 0})
	for v := uint64(1); v <= 5; v++ {
		f.Publish("d", v, ops(2))
	}
	res, ok := f.Ship(context.Background(), "d", 0, 1, 0, 0, 0)
	if !ok || res.Fenced {
		t.Fatalf("ship from 1: ok=%v fenced=%v", ok, res.Fenced)
	}
	if got := shipVersions(t, res); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("shipped versions %v", got)
	}
	if res.Ops != 10 || res.Head != 5 || res.Base != 0 {
		t.Fatalf("ship result %+v", res)
	}

	// Mid-stream cursor.
	res, _ = f.Ship(context.Background(), "d", res.Epoch, 4, 0, 0, 0)
	if got := shipVersions(t, res); len(got) != 2 || got[0] != 4 {
		t.Fatalf("ship from 4: versions %v", got)
	}

	// Caught up, no wait: empty but not fenced.
	res, _ = f.Ship(context.Background(), "d", res.Epoch, 6, 0, 0, 0)
	if res.Fenced || len(res.Frames) != 0 {
		t.Fatalf("caught-up ship: %+v", res)
	}

	// maxRecords bounds one response but never to zero frames.
	res, _ = f.Ship(context.Background(), "d", res.Epoch, 1, 2, 0, 0)
	if got := shipVersions(t, res); len(got) != 2 {
		t.Fatalf("capped ship: versions %v", got)
	}
	// A byte cap below one frame still ships the first frame.
	res, _ = f.Ship(context.Background(), "d", res.Epoch, 1, 0, 1, 0)
	if got := shipVersions(t, res); len(got) != 1 {
		t.Fatalf("byte-capped ship: versions %v", got)
	}
}

func TestFeedUnknownDataset(t *testing.T) {
	f := testFeed(FeedOptions{}, nil)
	if _, ok := f.Ship(context.Background(), "nope", 0, 1, 0, 0, 0); ok {
		t.Fatal("ship of unknown dataset reported ok")
	}
	if _, ok := f.Epoch("nope"); ok {
		t.Fatal("epoch of unknown dataset reported ok")
	}
}

func TestFeedTrimFencesOldCursors(t *testing.T) {
	f := testFeed(FeedOptions{MaxRecords: 3}, map[string]uint64{"d": 0})
	for v := uint64(1); v <= 10; v++ {
		f.Publish("d", v, ops(1))
	}
	// Ring keeps the newest 3: base=7, head=10.
	res, _ := f.Ship(context.Background(), "d", 0, 5, 0, 0, 0)
	if !res.Fenced {
		t.Fatalf("trimmed cursor not fenced: %+v", res)
	}
	if res.Base != 7 || res.Head != 10 {
		t.Fatalf("window %d..%d, want 7..10", res.Base, res.Head)
	}
	res, _ = f.Ship(context.Background(), "d", 0, 8, 0, 0, 0)
	if res.Fenced || len(res.Frames) != 3 {
		t.Fatalf("in-window ship: %+v", res)
	}
	if f.Stats().Fences == 0 {
		t.Fatal("fence not counted")
	}
}

func TestFeedEpochMismatchAndAheadFence(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 0})
	f.Publish("d", 1, ops(1))
	epoch, _ := f.Epoch("d")
	if res, _ := f.Ship(context.Background(), "d", epoch+1, 1, 0, 0, 0); !res.Fenced {
		t.Fatal("stale epoch not fenced")
	}
	// A cursor ahead of the head means the replica saw versions this
	// primary never published (rollback): fence.
	if res, _ := f.Ship(context.Background(), "d", epoch, 3, 0, 0, 0); !res.Fenced {
		t.Fatal("ahead-of-head cursor not fenced")
	}
	if res, _ := f.Ship(context.Background(), "d", epoch, 0, 0, 0, 0); !res.Fenced {
		t.Fatal("fromSeq=0 not fenced")
	}
}

func TestFeedGapResetsBuffer(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 0})
	f.Publish("d", 1, ops(1))
	f.Publish("d", 5, ops(1)) // versions 2..4 never seen: buffer must not bridge the hole
	res, _ := f.Ship(context.Background(), "d", 0, 2, 0, 0, 0)
	if !res.Fenced {
		t.Fatalf("cursor across gap not fenced: %+v", res)
	}
	res, _ = f.Ship(context.Background(), "d", 0, 5, 0, 0, 0)
	if res.Fenced || len(res.Frames) != 1 {
		t.Fatalf("post-gap ship: %+v", res)
	}
	if got := shipVersions(t, res); got[0] != 5 {
		t.Fatalf("post-gap version %d", got[0])
	}
}

func TestFeedDuplicatePublishDropped(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 0})
	f.Publish("d", 1, ops(1))
	f.Publish("d", 1, ops(1))
	res, _ := f.Ship(context.Background(), "d", 0, 1, 0, 0, 0)
	if len(res.Frames) != 1 || res.Head != 1 {
		t.Fatalf("duplicate publish extended the buffer: %+v", res)
	}
}

func TestFeedLongPollWakesOnPublish(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 0})
	f.Publish("d", 1, ops(1))
	epoch, _ := f.Epoch("d")
	done := make(chan ShipResult, 1)
	go func() {
		res, _ := f.Ship(context.Background(), "d", epoch, 2, 0, 0, 5*time.Second)
		done <- res
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	f.Publish("d", 2, ops(3))
	select {
	case res := <-done:
		if res.Fenced || len(res.Frames) != 1 || res.Ops != 3 {
			t.Fatalf("woken poll: %+v", res)
		}
		if got := shipVersions(t, res); got[0] != 2 {
			t.Fatalf("woken poll shipped version %d", got[0])
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long-poll did not wake on publish")
	}
}

func TestFeedResetFencesParkedPollers(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 3})
	e1, _ := f.Epoch("d")
	done := make(chan ShipResult, 1)
	go func() {
		res, _ := f.Ship(context.Background(), "d", e1, 4, 0, 0, 5*time.Second)
		done <- res
	}()
	time.Sleep(20 * time.Millisecond)
	f.Reset("d") // re-upload: lineage replaced wholesale
	select {
	case res := <-done:
		if !res.Fenced {
			t.Fatalf("poller across reset not fenced: %+v", res)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long-poll did not wake on reset")
	}
	e2, ok := f.Epoch("d")
	if !ok || e2 == e1 {
		t.Fatalf("epoch across reset: %d -> %d, ok=%v", e1, e2, ok)
	}
}

func TestFeedLongPollDeadline(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"d": 0})
	start := time.Now()
	res, _ := f.Ship(context.Background(), "d", 0, 1, 0, 0, 50*time.Millisecond)
	if res.Fenced || len(res.Frames) != 0 {
		t.Fatalf("deadline poll: %+v", res)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline poll overstayed")
	}
	// ctx cancellation also unparks.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		f.Ship(ctx, "d", 0, 1, 0, 0, time.Minute)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("canceled poll did not return")
	}
}

func TestFeedStats(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{"a": 0, "b": 0})
	f.Publish("a", 1, ops(2))
	f.Publish("b", 1, ops(3))
	f.Ship(context.Background(), "a", 0, 1, 0, 0, 0)
	s := f.Stats()
	if s.Datasets != 2 || s.Published != 2 || s.PublishedOps != 5 {
		t.Fatalf("publish stats %+v", s)
	}
	if s.ShippedRecords != 1 || s.ShippedBytes == 0 || s.BufferedRecords != 2 {
		t.Fatalf("ship stats %+v", s)
	}
	st, ok := f.Status("a")
	if !ok || st.Head != 1 || st.Base != 0 || st.Epoch == 0 {
		t.Fatalf("status %+v ok=%v", st, ok)
	}
	if _, ok := f.Status("never-touched"); ok {
		t.Fatal("status created state")
	}
}

func TestFeedEpochsDistinctAcrossDatasets(t *testing.T) {
	f := testFeed(FeedOptions{}, map[string]uint64{})
	seen := map[uint64]string{}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("d%d", i)
		f.Publish(name, 1, ops(1))
		e, _ := f.Epoch(name)
		if prev, dup := seen[e]; dup {
			t.Fatalf("epoch %d reused by %s and %s", e, prev, name)
		}
		seen[e] = name
	}
}
