package repl

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/snapshot"
)

// Feed buffer defaults: how many applied batches a primary keeps shippable
// per dataset before old records are trimmed and slow replicas must
// re-bootstrap. Records are whole mutation batches, so 8192 records at the
// default batch sizes is hours of sustained write load.
const (
	DefaultFeedRecords = 8192
	DefaultFeedBytes   = 64 << 20
)

// FeedOptions bound the per-dataset replication buffer.
type FeedOptions struct {
	MaxRecords int   // ring capacity in records (default DefaultFeedRecords)
	MaxBytes   int64 // ring capacity in frame bytes (default DefaultFeedBytes)
}

// Feed is the primary-side replication buffer: per dataset, a bounded ring
// of pre-encoded journal frames covering sequences (base, head], plus the
// epoch that scopes them. Publish is called from the Explorer mutate hook
// under the lineage lock, so frames for one dataset arrive in strict
// version order; Ship serves them to replicas with long-poll support.
type Feed struct {
	lookup     func(name string) (version uint64, ok bool)
	maxRecords int
	maxBytes   int64

	// epochSalt makes epochs unique across process boots: a replica that
	// tails a restarted primary must fence, because the in-memory buffer
	// it was promised is gone.
	epochSalt  uint64
	epochCount atomic.Uint64

	mu       sync.Mutex
	states   map[string]*feedState
	draining bool

	published      atomic.Int64
	publishedOps   atomic.Int64
	shippedRecords atomic.Int64
	shippedBytes   atomic.Int64
	fences         atomic.Int64
	activeTails    atomic.Int64
}

type feedState struct {
	epoch uint64
	base  uint64 // newest sequence NOT available; buffer covers base+1..head
	head  uint64
	recs  []feedRec // recs[i] is sequence base+1+i
	bytes int64
	// notify is closed and replaced on every publish and reset, waking
	// long-pollers to re-examine the state.
	notify chan struct{}
}

type feedRec struct {
	frame []byte
	ops   int
}

// NewFeed builds a feed. lookup resolves a dataset's current Version (used
// to seed a state lazily the first time a replica asks about a dataset that
// has not been mutated since boot).
func NewFeed(lookup func(name string) (uint64, bool), opt FeedOptions) *Feed {
	if opt.MaxRecords <= 0 {
		opt.MaxRecords = DefaultFeedRecords
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultFeedBytes
	}
	return &Feed{
		lookup:     lookup,
		maxRecords: opt.MaxRecords,
		maxBytes:   opt.MaxBytes,
		epochSalt:  uint64(time.Now().UnixNano()) << 16,
		states:     map[string]*feedState{},
	}
}

func (f *Feed) newEpoch() uint64 {
	return f.epochSalt + f.epochCount.Add(1)
}

// locked; seeds a state whose buffer starts empty at the given version.
func (f *Feed) ensureLocked(name string, version uint64) *feedState {
	st := f.states[name]
	if st == nil {
		st = &feedState{
			epoch:  f.newEpoch(),
			base:   version,
			head:   version,
			notify: make(chan struct{}),
		}
		f.states[name] = st
	}
	return st
}

// Publish records one applied batch: the ops that produced Version
// `version` of dataset `name`. Called in strict version order per dataset
// (the Explorer hook contract). A duplicate or older version is dropped; a
// version gap (a lineage jumped versions without the hook seeing the
// intermediate batches) resets the buffer so no replica can be served a
// stream with a hole — they fence and re-bootstrap instead.
func (f *Feed) Publish(name string, version uint64, ops []snapshot.JournalOp) {
	if version == 0 {
		return
	}
	frame := snapshot.EncodeJournalFrame(snapshot.JournalRecord{Version: version, Ops: ops})
	f.mu.Lock()
	st := f.ensureLocked(name, version-1)
	switch {
	case version <= st.head:
		f.mu.Unlock()
		return
	case version != st.head+1:
		st.recs = nil
		st.bytes = 0
		st.base = version - 1
		st.head = version - 1
	}
	st.recs = append(st.recs, feedRec{frame: frame, ops: len(ops)})
	st.bytes += int64(len(frame))
	st.head = version
	for (len(st.recs) > f.maxRecords || st.bytes > f.maxBytes) && len(st.recs) > 1 {
		st.bytes -= int64(len(st.recs[0].frame))
		st.recs[0].frame = nil
		st.recs = st.recs[1:]
		st.base++
	}
	close(st.notify)
	st.notify = make(chan struct{})
	f.mu.Unlock()
	f.published.Add(1)
	f.publishedOps.Add(int64(len(ops)))
}

// Reset discards a dataset's buffer and epoch — call when the lineage is
// replaced wholesale (re-upload). Parked long-pollers wake and fence; the
// next touch lazily re-seeds a state with a fresh epoch.
func (f *Feed) Reset(name string) {
	f.mu.Lock()
	if st := f.states[name]; st != nil {
		close(st.notify)
		delete(f.states, name)
	}
	f.mu.Unlock()
}

// Epoch returns the dataset's current epoch, lazily seeding feed state at
// the dataset's current version. ok is false when the dataset is unknown
// to the Explorer.
func (f *Feed) Epoch(name string) (epoch uint64, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.states[name]; st != nil {
		return st.epoch, true
	}
	v, ok := f.lookup(name)
	if !ok {
		return 0, false
	}
	return f.ensureLocked(name, v).epoch, true
}

// ShipResult is one journal-shipping response: either Fenced (the cursor
// cannot be served contiguously) or zero or more frames starting at the
// requested sequence.
type ShipResult struct {
	Epoch  uint64
	Base   uint64 // oldest shippable sequence is Base+1
	Head   uint64
	Frames [][]byte
	Ops    int
	Fenced bool
}

// Ship serves frames for dataset `name` starting at fromSeq (≥ 1). epoch 0
// skips the epoch check (a debugging convenience); any other mismatch
// fences. If the cursor is exactly at the head and wait > 0, Ship parks up
// to wait for a publish. maxRecords/maxBytes bound one response (0 =
// feed defaults).
func (f *Feed) Ship(ctx context.Context, name string, epoch, fromSeq uint64, maxRecords int, maxBytes int64, wait time.Duration) (ShipResult, bool) {
	if maxRecords <= 0 {
		maxRecords = f.maxRecords
	}
	if maxBytes <= 0 {
		maxBytes = f.maxBytes
	}
	var deadline <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		deadline = t.C
	}
	f.activeTails.Add(1)
	defer f.activeTails.Add(-1)
	for {
		f.mu.Lock()
		st := f.states[name]
		if st == nil {
			v, ok := f.lookup(name)
			if !ok {
				f.mu.Unlock()
				return ShipResult{}, false
			}
			st = f.ensureLocked(name, v)
		}
		res := ShipResult{Epoch: st.epoch, Base: st.base, Head: st.head}
		switch {
		case epoch != 0 && epoch != st.epoch,
			fromSeq == 0,
			fromSeq <= st.base,
			fromSeq > st.head+1:
			// Stranded cursor: stale epoch, trimmed-past position, or a
			// position ahead of the head (a rollback the replica cannot
			// see). One answer for all of them: fence.
			f.mu.Unlock()
			res.Fenced = true
			f.fences.Add(1)
			return res, true
		case fromSeq <= st.head:
			idx := int(fromSeq - st.base - 1)
			var bytes int64
			for _, r := range st.recs[idx:] {
				if len(res.Frames) >= maxRecords || (bytes > 0 && bytes+int64(len(r.frame)) > maxBytes) {
					break
				}
				res.Frames = append(res.Frames, r.frame)
				res.Ops += r.ops
				bytes += int64(len(r.frame))
			}
			f.mu.Unlock()
			f.shippedRecords.Add(int64(len(res.Frames)))
			f.shippedBytes.Add(bytes)
			return res, true
		}
		// Caught up: long-poll or return empty.
		notify := st.notify
		draining := f.draining
		f.mu.Unlock()
		if wait <= 0 || draining {
			return res, true
		}
		select {
		case <-ctx.Done():
			return res, true
		case <-deadline:
			return res, true
		case <-notify:
			// Re-examine: a publish extended the head, or a reset fenced us.
		}
	}
}

// Drain releases every parked long-poller and makes subsequent Ship calls
// answer immediately instead of parking. Call on graceful shutdown (so
// replicas' in-flight long-polls return within one round trip, not after
// PollWait) and on demotion (the feed is being abandoned). Publishing after
// Drain still works but no longer parks anyone; there is no un-drain.
func (f *Feed) Drain() {
	f.mu.Lock()
	if !f.draining {
		f.draining = true
		for _, st := range f.states {
			close(st.notify)
			st.notify = make(chan struct{})
		}
	}
	f.mu.Unlock()
}

// FeedStats is the primary-side replication counter block for /api/stats.
type FeedStats struct {
	Datasets        int   `json:"datasets"`
	Published       int64 `json:"published"`
	PublishedOps    int64 `json:"publishedOps"`
	ShippedRecords  int64 `json:"shippedRecords"`
	ShippedBytes    int64 `json:"shippedBytes"`
	Fences          int64 `json:"fences"`
	ActiveTails     int64 `json:"activeTails"`
	BufferedRecords int   `json:"bufferedRecords"`
	BufferedBytes   int64 `json:"bufferedBytes"`
}

// Stats snapshots the feed counters.
func (f *Feed) Stats() FeedStats {
	s := FeedStats{
		Published:      f.published.Load(),
		PublishedOps:   f.publishedOps.Load(),
		ShippedRecords: f.shippedRecords.Load(),
		ShippedBytes:   f.shippedBytes.Load(),
		Fences:         f.fences.Load(),
		ActiveTails:    f.activeTails.Load(),
	}
	f.mu.Lock()
	s.Datasets = len(f.states)
	for _, st := range f.states {
		s.BufferedRecords += len(st.recs)
		s.BufferedBytes += st.bytes
	}
	f.mu.Unlock()
	return s
}

// FeedStatus is one dataset's shipping position (for dataset resources).
type FeedStatus struct {
	Epoch uint64
	Base  uint64
	Head  uint64
}

// Status reports a dataset's feed position without creating state.
func (f *Feed) Status(name string) (FeedStatus, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.states[name]
	if st == nil {
		return FeedStatus{}, false
	}
	return FeedStatus{Epoch: st.epoch, Base: st.base, Head: st.head}, true
}
