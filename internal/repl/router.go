package repl

import (
	"bytes"
	"cmp"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// RouterOptions tune the router. Zero values take the noted defaults.
type RouterOptions struct {
	Client       *http.Client // upstream transport (default: 30s-timeout client)
	VNodes       int          // virtual nodes per replica on the hash ring (default 64)
	MaxBodyBytes int64        // largest request body buffered for failover replay (default 32 MiB)
	Logf         func(format string, args ...any)
}

// Router is the version-aware front door of a replication fleet: a thin
// HTTP layer that sends writes to the primary and fans dataset reads across
// replicas by consistent hashing on the dataset name. Hashing gives every
// dataset a stable home replica — exploration sessions and the serve-time
// result cache stay hot — and the ring provides the failover order when
// that home is down or lagging. Read-your-writes needs no router state:
// the X-CExplorer-Min-Version header passes through, a lagging replica
// answers 503 replica_lagging, and the router walks the ring to the
// primary, which is never behind.
type Router struct {
	primary  string
	replicas []string
	ring     []ringPoint
	opt      RouterOptions

	reads       atomic.Int64
	writes      atomic.Int64
	sessions    atomic.Int64
	passthrough atomic.Int64
	failovers   atomic.Int64
	relayAborts atomic.Int64
	errors      atomic.Int64
	perNode     []nodeCounters // index-aligned with nodes(): replicas then primary
}

type nodeCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

type ringPoint struct {
	hash uint32
	node int // index into replicas
}

// NewRouter builds a router over one primary and zero or more replicas
// (base URLs). With no replicas every request goes to the primary — a
// degenerate but valid topology for bring-up.
func NewRouter(primary string, replicas []string, opt RouterOptions) *Router {
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opt.VNodes <= 0 {
		opt.VNodes = 64
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 32 << 20
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	rt := &Router{
		primary:  strings.TrimRight(primary, "/"),
		replicas: make([]string, 0, len(replicas)),
		opt:      opt,
	}
	for _, rep := range replicas {
		if rep = strings.TrimRight(rep, "/"); rep != "" {
			rt.replicas = append(rt.replicas, rep)
		}
	}
	for i, rep := range rt.replicas {
		for v := 0; v < opt.VNodes; v++ {
			h := fnv.New32a()
			fmt.Fprintf(h, "%s#%d", rep, v)
			rt.ring = append(rt.ring, ringPoint{hash: h.Sum32(), node: i})
		}
	}
	slices.SortFunc(rt.ring, func(a, b ringPoint) int {
		if c := cmp.Compare(a.hash, b.hash); c != 0 {
			return c
		}
		return cmp.Compare(a.node, b.node)
	})
	rt.perNode = make([]nodeCounters, len(rt.replicas)+1)
	return rt
}

// replicaOrder returns replica indexes in ring order starting at the
// dataset's home position: the failover preference list.
func (rt *Router) replicaOrder(dataset string) []int {
	if len(rt.replicas) == 0 {
		return nil
	}
	h := fnv.New32a()
	io.WriteString(h, dataset)
	key := h.Sum32()
	start := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= key })
	order := make([]int, 0, len(rt.replicas))
	seen := make([]bool, len(rt.replicas))
	for i := 0; i < len(rt.ring) && len(order) < len(rt.replicas); i++ {
		p := rt.ring[(start+i)%len(rt.ring)]
		if !seen[p.node] {
			seen[p.node] = true
			order = append(order, p.node)
		}
	}
	return order
}

// DatasetFromPath extracts the {name} segment of /api/v1/datasets/{name}[/...],
// or "" when the path is not a dataset resource.
func DatasetFromPath(p string) string {
	const prefix = "/api/v1/datasets/"
	rest, ok := strings.CutPrefix(p, prefix)
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	name, err := url.PathUnescape(rest)
	if err != nil {
		return ""
	}
	return name
}

// route classifies a request into an ordered upstream preference list.
func (rt *Router) route(r *http.Request) (targets []string, class string) {
	p := r.URL.Path
	dataset := DatasetFromPath(p)
	sub := "" // sub-resource path after the dataset segment
	if dataset != "" {
		rest, _ := strings.CutPrefix(p, "/api/v1/datasets/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			sub = rest[i:]
		}
	}
	isMutation := r.Method == http.MethodPost && dataset != "" && strings.HasSuffix(p, "/mutations")
	isUpload := r.Method == http.MethodPost && (p == "/api/upload" || p == "/api/upload/attributed")
	isDelete := r.Method == http.MethodDelete && dataset != "" && sub == ""
	isShipping := dataset != "" && (strings.HasSuffix(p, "/journal") || strings.HasSuffix(p, "/snapshot"))
	isSession := sub == "/explore" || strings.HasPrefix(sub, "/explore/")
	switch {
	case isMutation, isUpload, isDelete:
		return []string{rt.primary}, "write"
	case isShipping:
		// Replication-internal traffic: replicas must tail the primary's
		// feed, never each other's.
		return []string{rt.primary}, "passthrough"
	case isSession && len(rt.replicas) > 0:
		// Exploration sessions are server-side state living on exactly one
		// node. A ring walk here would be failover theater: the next replica
		// never saw the session, so a briefly-down or lagging home node would
		// turn every /step into a session_not_found 404 — worse than the
		// honest 502/503 the client can retry against the same home once it
		// recovers. Stick to the home node, no fallback.
		order := rt.replicaOrder(dataset)
		return []string{rt.replicas[order[0]]}, "session"
	case dataset != "" && len(rt.replicas) > 0:
		order := rt.replicaOrder(dataset)
		targets = make([]string, 0, len(order)+1)
		for _, i := range order {
			targets = append(targets, rt.replicas[i])
		}
		return append(targets, rt.primary), "read"
	default:
		// Dataset list, legacy flat endpoints (dataset named in the body),
		// stats of the primary, UI assets: the primary serves them all.
		return []string{rt.primary}, "passthrough"
	}
}

// Handler returns the router's HTTP surface: /api/stats reports routing
// counters; everything else proxies along the routed preference list.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/stats", rt.handleStats)
	mux.HandleFunc("/", rt.proxy)
	return mux
}

// shouldFailover reports whether an upstream response means "try the next
// node" rather than "relay to the client". 503 covers replica_lagging and
// genuinely overloaded nodes; 502/504 cover dead proxies in between.
func shouldFailover(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	targets, class := rt.route(r)
	switch class {
	case "read":
		rt.reads.Add(1)
	case "write":
		rt.writes.Add(1)
	case "session":
		rt.sessions.Add(1)
	default:
		rt.passthrough.Add(1)
	}
	// Buffer the body so a failed upstream attempt can be replayed.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, rt.opt.MaxBodyBytes+1))
		r.Body.Close()
		if err != nil {
			writeRouterError(w, http.StatusBadRequest, "read request body: "+err.Error(), "invalid_request")
			return
		}
		if int64(len(body)) > rt.opt.MaxBodyBytes {
			writeRouterError(w, http.StatusRequestEntityTooLarge, "request body exceeds router buffer", "invalid_request")
			return
		}
	}
	for i, target := range targets {
		resp, err := rt.forward(r, target, body)
		node := rt.nodeIndex(target)
		rt.perNode[node].requests.Add(1)
		if err != nil {
			rt.perNode[node].errors.Add(1)
			rt.errors.Add(1)
			if i < len(targets)-1 {
				rt.failovers.Add(1)
				rt.opt.Logf("router: %s %s: %s unreachable (%v); failing over", r.Method, r.URL.Path, target, err)
				continue
			}
			writeRouterError(w, http.StatusBadGateway, "no upstream reachable", "bad_gateway")
			return
		}
		if shouldFailover(resp.StatusCode) && i < len(targets)-1 {
			drain(resp)
			rt.failovers.Add(1)
			continue
		}
		rt.relay(w, resp, target)
		return
	}
	writeRouterError(w, http.StatusBadGateway, "no upstream configured", "bad_gateway")
}

func (rt *Router) forward(r *http.Request, target string, body []byte) (*http.Response, error) {
	u := target + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Host":
			continue
		}
		req.Header[k] = vs
	}
	return rt.opt.Client.Do(req)
}

func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, target string) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	h.Set(HeaderServedBy, target)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The upstream died mid-body (or the client went away). The status
		// line is already out, so the copy error cannot become an error
		// response; swallowing it would hand the client a truncated body
		// under a clean 200. Abort the connection instead — the client sees
		// a torn response it knows to distrust.
		rt.relayAborts.Add(1)
		rt.opt.Logf("router: relay from %s aborted mid-body: %v", target, err)
		panic(http.ErrAbortHandler)
	}
}

func writeRouterError(w http.ResponseWriter, status int, msg, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// nodeIndex maps a target URL to its per-node counter slot (replicas in
// order, then the primary last).
func (rt *Router) nodeIndex(target string) int {
	for i, rep := range rt.replicas {
		if rep == target {
			return i
		}
	}
	return len(rt.replicas)
}

// RouterStats is the router's /api/stats payload.
type RouterStats struct {
	Role      string   `json:"role"`
	Primary   string   `json:"primary"`
	Replicas  []string `json:"replicas"`
	Reads     int64    `json:"reads"`
	Writes    int64    `json:"writes"`
	Sessions  int64    `json:"sessions"` // session-scoped requests pinned to the home node
	Proxied   int64    `json:"proxied"`
	Failovers int64    `json:"failovers"`
	// RelayAborts counts responses killed mid-body because the upstream died
	// while the router was relaying — torn connections, never silent
	// truncated 200s.
	RelayAborts int64                `json:"relayAborts"`
	Errors      int64                `json:"errors"`
	PerNode     map[string]NodeStats `json:"perNode"`
}

// NodeStats is one upstream's share of router traffic.
type NodeStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// Stats snapshots routing counters.
func (rt *Router) Stats() RouterStats {
	s := RouterStats{
		Role:        "router",
		Primary:     rt.primary,
		Replicas:    rt.replicas,
		Reads:       rt.reads.Load(),
		Writes:      rt.writes.Load(),
		Sessions:    rt.sessions.Load(),
		Proxied:     rt.passthrough.Load(),
		Failovers:   rt.failovers.Load(),
		RelayAborts: rt.relayAborts.Load(),
		Errors:      rt.errors.Load(),
		PerNode:     map[string]NodeStats{},
	}
	for i := range rt.perNode {
		name := rt.primary
		if i < len(rt.replicas) {
			name = rt.replicas[i]
		}
		s.PerNode[name] = NodeStats{
			Requests: rt.perNode[i].requests.Load(),
			Errors:   rt.perNode[i].errors.Load(),
		}
	}
	return s
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Stats())
}
