package repl

import (
	"bytes"
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions tune the router. Zero values take the noted defaults.
type RouterOptions struct {
	Client       *http.Client // upstream transport (default: 30s-timeout client)
	VNodes       int          // virtual nodes per replica on the hash ring (default 64)
	MaxBodyBytes int64        // largest request body buffered for failover replay (default 32 MiB)
	Logf         func(format string, args ...any)
}

// SelfHealOptions turn the router into the fleet's failure detector and
// promotion coordinator (see the package doc's promotion protocol).
type SelfHealOptions struct {
	// Monitor tunes the health prober (probe interval, per-probe timeout,
	// consecutive-failure threshold, open-state backoff cap).
	Monitor MonitorOptions
	// Promote enables automatic promotion of the most-caught-up replica
	// when the primary's circuit opens. With Promote false the router
	// still probes, drops dead nodes from the read ring, and answers
	// writes with 503 no_primary — detection without the coup.
	Promote bool
}

// Router is the version-aware front door of a replication fleet: a thin
// HTTP layer that sends writes to the primary and fans dataset reads across
// replicas by consistent hashing on the dataset name. Hashing gives every
// dataset a stable home replica — exploration sessions and the serve-time
// result cache stay hot — and the ring provides the failover order when
// that home is down or lagging. Read-your-writes needs no router state:
// the X-CExplorer-Min-Version header passes through, a lagging replica
// answers 503 replica_lagging, and the router walks the ring to the
// primary, which is never behind.
//
// With self-healing enabled (EnableSelfHealing + Run) the router also owns
// fleet membership: a Monitor keeps a circuit breaker per node so dead nodes
// leave the read ring immediately, and a supervision loop promotes the
// most-caught-up replica when the primary is declared down, re-targets the
// survivors, and demotes a stale primary that comes back.
type Router struct {
	opt     RouterOptions
	started time.Time

	// Topology is copy-on-write under mu: route() snapshots (primary,
	// replicas, ring) per request; every change installs fresh slices.
	mu         sync.Mutex
	primary    string
	replicas   []string
	ring       []ringPoint
	fleetEpoch uint64
	electing   bool

	heal    SelfHealOptions
	healing bool
	monitor *Monitor

	reads       atomic.Int64
	writes      atomic.Int64
	sessions    atomic.Int64
	passthrough atomic.Int64
	failovers   atomic.Int64
	relayAborts atomic.Int64
	errors      atomic.Int64
	noPrimary   atomic.Int64
	promotions  atomic.Int64
	demotions   atomic.Int64
	retargeted  atomic.Int64

	nodeMu  sync.Mutex
	perNode map[string]*nodeCounters
}

type nodeCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

type ringPoint struct {
	hash uint32
	node int // index into replicas
}

// NewRouter builds a router over one primary and zero or more replicas
// (base URLs). With no replicas every request goes to the primary — a
// degenerate but valid topology for bring-up.
func NewRouter(primary string, replicas []string, opt RouterOptions) *Router {
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opt.VNodes <= 0 {
		opt.VNodes = 64
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 32 << 20
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	rt := &Router{
		opt:     opt,
		started: time.Now(),
		primary: strings.TrimRight(primary, "/"),
		perNode: map[string]*nodeCounters{},
	}
	var reps []string
	for _, rep := range replicas {
		if rep = strings.TrimRight(rep, "/"); rep != "" {
			reps = append(reps, rep)
		}
	}
	rt.replicas = reps
	rt.ring = buildRing(reps, opt.VNodes)
	return rt
}

// buildRing hashes each replica onto vnodes virtual points, sorted.
func buildRing(replicas []string, vnodes int) []ringPoint {
	var ring []ringPoint
	for i, rep := range replicas {
		for v := 0; v < vnodes; v++ {
			h := fnv.New32a()
			fmt.Fprintf(h, "%s#%d", rep, v)
			ring = append(ring, ringPoint{hash: h.Sum32(), node: i})
		}
	}
	slices.SortFunc(ring, func(a, b ringPoint) int {
		if c := cmp.Compare(a.hash, b.hash); c != 0 {
			return c
		}
		return cmp.Compare(a.node, b.node)
	})
	return ring
}

// topology snapshots the routing state. The returned slices are
// copy-on-write: never mutated after publication.
func (rt *Router) topology() (primary string, replicas []string, ring []ringPoint, fleetEpoch uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.primary, rt.replicas, rt.ring, rt.fleetEpoch
}

// setTopology installs a new (primary, replicas) pair and rebuilds the ring.
func (rt *Router) setTopologyLocked(primary string, replicas []string) {
	rt.primary = primary
	rt.replicas = replicas
	rt.ring = buildRing(replicas, rt.opt.VNodes)
}

// EnableSelfHealing attaches a health monitor over the current topology.
// Call before Handler is serving and follow with Run (the monitor and the
// supervision loop run inside it).
func (rt *Router) EnableSelfHealing(opt SelfHealOptions) {
	if opt.Monitor.Client == nil {
		opt.Monitor.Client = rt.opt.Client
	}
	if opt.Monitor.Logf == nil {
		opt.Monitor.Logf = rt.opt.Logf
	}
	m := NewMonitor(opt.Monitor)
	primary, replicas, _, _ := rt.topology()
	m.Add(primary)
	for _, rep := range replicas {
		m.Add(rep)
	}
	rt.mu.Lock()
	rt.heal = opt
	rt.healing = true
	rt.monitor = m
	rt.mu.Unlock()
}

// Monitor returns the health monitor (nil until EnableSelfHealing).
func (rt *Router) Monitor() *Monitor {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.monitor
}

// Run drives self-healing until ctx is canceled: the probe loop plus a
// supervision pass per probe interval (election when the primary's circuit
// opens, re-targeting, demotion of stale primaries). A no-op without
// EnableSelfHealing.
func (rt *Router) Run(ctx context.Context) {
	rt.mu.Lock()
	m, healing := rt.monitor, rt.healing
	rt.mu.Unlock()
	if !healing || m == nil {
		return
	}
	go m.Run(ctx)
	tick := time.NewTicker(m.opt.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			rt.supervise(ctx)
		}
	}
}

// supervise is one reconciliation pass: adopt higher fleet epochs observed
// in the wild, elect a new primary if the current one is declared down, and
// steer every other node back into the topology (retarget replicas pointing
// at a dead primary, demote a stale primary that came back). Every action
// here is idempotent and retried next tick on failure.
func (rt *Router) supervise(ctx context.Context) {
	m := rt.Monitor()
	if m == nil {
		return
	}
	primary, replicas, _, epoch := rt.topology()

	// Adopt: a node claiming primacy at a higher epoch than ours wins —
	// this is how a restarted router rejoins a fleet that promoted while it
	// was away (and how it learns the current epoch at all).
	stats := m.Stats()
	for node, np := range stats.Nodes {
		h := np.Health
		if h == nil {
			continue
		}
		if h.FleetEpoch > epoch && h.Role == "primary" && node != primary {
			rt.opt.Logf("router: adopting %s as primary (fleet epoch %d > %d)", node, h.FleetEpoch, epoch)
			rt.commitPrimary(node, h.FleetEpoch)
			primary, replicas, _, epoch = rt.topology()
		} else if h.FleetEpoch > epoch {
			rt.mu.Lock()
			if h.FleetEpoch > rt.fleetEpoch {
				rt.fleetEpoch = h.FleetEpoch
			}
			rt.mu.Unlock()
			epoch = h.FleetEpoch
		}
	}

	// Elect: primary declared down, promotion enabled, somebody to promote.
	if rt.heal.Promote && m.State(primary) == StateOpen && len(replicas) > 0 {
		rt.elect(ctx, primary, replicas, epoch)
		primary, replicas, _, epoch = rt.topology()
	}

	// Reconcile every tracked node against the topology.
	for node, np := range stats.Nodes {
		if node == primary || np.Health == nil || !m.Available(node) {
			continue
		}
		h := m.Health(node) // re-read: adoption/election may have refreshed it
		if h == nil {
			continue
		}
		switch h.Role {
		case "primary":
			// A stale primary (dead, promoted around, came back). Fence it:
			// demotion carries our higher epoch; the node refuses anything
			// not above its own, so a misconfigured twin primary at the same
			// epoch is left alone (and logged) rather than clobbered.
			if h.FleetEpoch >= epoch {
				rt.opt.Logf("router: node %s claims primary at epoch %d ≥ ours %d; not demoting", node, h.FleetEpoch, epoch)
				continue
			}
			dctx, cancel := context.WithTimeout(ctx, healthDeadline)
			err := postControl(dctx, rt.opt.Client, node, "/api/v1/demote", demoteRequest{Epoch: epoch, Primary: primary})
			cancel()
			if err != nil {
				rt.opt.Logf("router: demote %s: %v", node, err)
				continue
			}
			rt.demotions.Add(1)
			rt.opt.Logf("router: demoted stale primary %s (epoch %d → replica of %s)", node, epoch, primary)
			rt.addReplica(node)
		case "replica":
			if !slices.Contains(replicas, node) {
				rt.addReplica(node)
			}
			if h.Primary != "" && h.Primary != primary {
				rctx, cancel := context.WithTimeout(ctx, healthDeadline)
				err := postControl(rctx, rt.opt.Client, node, "/api/v1/retarget", retargetRequest{Epoch: epoch, Primary: primary})
				cancel()
				if err != nil {
					rt.opt.Logf("router: retarget %s: %v", node, err)
					continue
				}
				rt.retargeted.Add(1)
				rt.opt.Logf("router: re-targeted %s to %s", node, primary)
			}
		}
	}
}

// elect promotes the most-caught-up available replica to primary at epoch+1.
// Candidates are tried in applied-order; a candidate that refuses (it found
// a peer further ahead: 409 not_caught_up) or cannot be reached sends the
// election to the next. On success the topology swaps atomically — writes
// start flowing to the new primary on the next request.
func (rt *Router) elect(ctx context.Context, deadPrimary string, replicas []string, epoch uint64) {
	rt.mu.Lock()
	if rt.electing {
		rt.mu.Unlock()
		return
	}
	rt.electing = true
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		rt.electing = false
		rt.mu.Unlock()
	}()

	m := rt.Monitor()
	type candidate struct {
		url     string
		applied uint64
	}
	var cands []candidate
	for _, rep := range replicas {
		if !m.Available(rep) {
			continue
		}
		h := m.Health(rep)
		if h == nil {
			continue
		}
		cands = append(cands, candidate{url: rep, applied: h.AppliedTotal()})
	}
	if len(cands) == 0 {
		rt.opt.Logf("router: primary %s down but no reachable replica to promote", deadPrimary)
		return
	}
	slices.SortStableFunc(cands, func(a, b candidate) int {
		return cmp.Compare(b.applied, a.applied) // most caught-up first
	})
	newEpoch := epoch + 1
	for _, cand := range cands {
		peers := make([]string, 0, len(cands)-1)
		for _, other := range cands {
			if other.url != cand.url {
				peers = append(peers, other.url)
			}
		}
		pctx, cancel := context.WithTimeout(ctx, 2*healthDeadline)
		err := postControl(pctx, rt.opt.Client, cand.url, "/api/v1/promote", promoteRequest{Epoch: newEpoch, Peers: peers})
		cancel()
		if err != nil {
			rt.opt.Logf("router: promote %s (applied %d): %v; trying next candidate", cand.url, cand.applied, err)
			continue
		}
		rt.promotions.Add(1)
		rt.opt.Logf("router: promoted %s to primary at fleet epoch %d (was %s)", cand.url, newEpoch, deadPrimary)
		rt.commitPrimary(cand.url, newEpoch)
		return
	}
	rt.opt.Logf("router: election at epoch %d failed: no candidate accepted", newEpoch)
}

// commitPrimary swaps node in as primary (removing it from the read ring)
// and records the fleet epoch. The old primary stays known to the monitor;
// if it ever comes back, supervision demotes it and re-adds it as a replica.
func (rt *Router) commitPrimary(node string, epoch uint64) {
	rt.mu.Lock()
	reps := make([]string, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		if rep != node {
			reps = append(reps, rep)
		}
	}
	rt.setTopologyLocked(node, reps)
	if epoch > rt.fleetEpoch {
		rt.fleetEpoch = epoch
	}
	rt.mu.Unlock()
	if m := rt.Monitor(); m != nil {
		m.Add(node)
	}
}

// addReplica adds node to the read ring (idempotent; never the primary).
func (rt *Router) addReplica(node string) {
	rt.mu.Lock()
	if node == rt.primary || slices.Contains(rt.replicas, node) {
		rt.mu.Unlock()
		return
	}
	reps := append(slices.Clone(rt.replicas), node)
	rt.setTopologyLocked(rt.primary, reps)
	rt.mu.Unlock()
	if m := rt.Monitor(); m != nil {
		m.Add(node)
	}
}

// replicaOrder resolves the dataset's preference list against the current
// topology (test seam; the proxy path snapshots topology once per request).
func (rt *Router) replicaOrder(dataset string) []int {
	_, replicas, ring, _ := rt.topology()
	return replicaOrder(dataset, replicas, ring)
}

// replicaOrder returns replica indexes in ring order starting at the
// dataset's home position: the failover preference list.
func replicaOrder(dataset string, replicas []string, ring []ringPoint) []int {
	if len(replicas) == 0 {
		return nil
	}
	h := fnv.New32a()
	io.WriteString(h, dataset)
	key := h.Sum32()
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= key })
	order := make([]int, 0, len(replicas))
	seen := make([]bool, len(replicas))
	for i := 0; i < len(ring) && len(order) < len(replicas); i++ {
		p := ring[(start+i)%len(ring)]
		if !seen[p.node] {
			seen[p.node] = true
			order = append(order, p.node)
		}
	}
	return order
}

// DatasetFromPath extracts the {name} segment of /api/v1/datasets/{name}[/...],
// or "" when the path is not a dataset resource.
func DatasetFromPath(p string) string {
	const prefix = "/api/v1/datasets/"
	rest, ok := strings.CutPrefix(p, prefix)
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	name, err := url.PathUnescape(rest)
	if err != nil {
		return ""
	}
	return name
}

// route classifies a request into an ordered upstream preference list.
func (rt *Router) route(r *http.Request) (targets []string, class string) {
	primary, replicas, ring, _ := rt.topology()
	p := r.URL.Path
	dataset := DatasetFromPath(p)
	sub := "" // sub-resource path after the dataset segment
	if dataset != "" {
		rest, _ := strings.CutPrefix(p, "/api/v1/datasets/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			sub = rest[i:]
		}
	}
	isMutation := r.Method == http.MethodPost && dataset != "" && strings.HasSuffix(p, "/mutations")
	isUpload := r.Method == http.MethodPost && (p == "/api/upload" || p == "/api/upload/attributed")
	isDelete := r.Method == http.MethodDelete && dataset != "" && sub == ""
	isShipping := dataset != "" && (strings.HasSuffix(p, "/journal") || strings.HasSuffix(p, "/snapshot"))
	isSession := sub == "/explore" || strings.HasPrefix(sub, "/explore/")
	switch {
	case isMutation, isUpload, isDelete:
		return []string{primary}, "write"
	case isShipping:
		// Replication-internal traffic: replicas must tail the primary's
		// feed, never each other's.
		return []string{primary}, "passthrough"
	case isSession && len(replicas) > 0:
		// Exploration sessions are server-side state living on exactly one
		// node. A ring walk here would be failover theater: the next replica
		// never saw the session, so a briefly-down or lagging home node would
		// turn every /step into a session_not_found 404 — worse than the
		// honest 502/503 the client can retry against the same home once it
		// recovers. Stick to the home node, no fallback.
		order := replicaOrder(dataset, replicas, ring)
		return []string{replicas[order[0]]}, "session"
	case dataset != "" && len(replicas) > 0:
		order := replicaOrder(dataset, replicas, ring)
		targets = make([]string, 0, len(order)+1)
		for _, i := range order {
			targets = append(targets, replicas[i])
		}
		targets = rt.filterAvailable(targets)
		return append(targets, primary), "read"
	default:
		// Dataset list, legacy flat endpoints (dataset named in the body),
		// stats of the primary, UI assets: the primary serves them all.
		return []string{primary}, "passthrough"
	}
}

// filterAvailable drops open-circuit nodes from a read preference list, so
// dead replicas stop costing a failover round trip per request. If the
// monitor has everything open (or is absent), the original list survives —
// the ring walk plus the primary fallback remain the last line of defense.
func (rt *Router) filterAvailable(targets []string) []string {
	m := rt.Monitor()
	if m == nil {
		return targets
	}
	avail := make([]string, 0, len(targets))
	for _, t := range targets {
		if m.Available(t) {
			avail = append(avail, t)
		}
	}
	if len(avail) == 0 {
		return targets
	}
	return avail
}

// Handler returns the router's HTTP surface: /api/stats reports routing
// counters, /api/v1/health identifies the router itself; everything else
// proxies along the routed preference list.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/stats", rt.handleStats)
	mux.HandleFunc("GET /api/v1/health", rt.handleHealth)
	mux.HandleFunc("/", rt.proxy)
	return mux
}

// shouldFailover reports whether an upstream response means "try the next
// node" rather than "relay to the client". 503 covers replica_lagging and
// genuinely overloaded nodes; 502/504 cover dead proxies in between.
func shouldFailover(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	targets, class := rt.route(r)
	var stampEpoch uint64
	switch class {
	case "read":
		rt.reads.Add(1)
	case "write":
		rt.writes.Add(1)
		if m := rt.Monitor(); m != nil {
			// Fail fast during an election window: the primary's circuit is
			// open, so forwarding would only burn a timeout. Reads keep
			// flowing off the replicas; writers get a typed, retryable 503.
			_, _, _, epoch := rt.topology()
			if !m.Available(targets[0]) {
				rt.noPrimary.Add(1)
				writeRouterError(w, http.StatusServiceUnavailable, "no primary available (election pending or fleet headless)", CodeNoPrimary, 1)
				return
			}
			stampEpoch = epoch
		}
	case "session":
		rt.sessions.Add(1)
	default:
		rt.passthrough.Add(1)
	}
	// Buffer the body so a failed upstream attempt can be replayed.
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, rt.opt.MaxBodyBytes+1))
		r.Body.Close()
		if err != nil {
			writeRouterError(w, http.StatusBadRequest, "read request body: "+err.Error(), "invalid_request", 0)
			return
		}
		if int64(len(body)) > rt.opt.MaxBodyBytes {
			writeRouterError(w, http.StatusRequestEntityTooLarge, "request body exceeds router buffer", "invalid_request", 0)
			return
		}
	}
	for i, target := range targets {
		resp, err := rt.forward(r, target, body, stampEpoch)
		node := rt.nodeCounter(target)
		node.requests.Add(1)
		if err != nil {
			node.errors.Add(1)
			rt.errors.Add(1)
			if i < len(targets)-1 {
				rt.failovers.Add(1)
				rt.opt.Logf("router: %s %s: %s unreachable (%v); failing over", r.Method, r.URL.Path, target, err)
				continue
			}
			writeRouterError(w, http.StatusBadGateway, "no upstream reachable", "bad_gateway", 0)
			return
		}
		if shouldFailover(resp.StatusCode) && i < len(targets)-1 {
			drain(resp)
			rt.failovers.Add(1)
			continue
		}
		rt.relay(w, resp, target)
		return
	}
	writeRouterError(w, http.StatusBadGateway, "no upstream configured", "bad_gateway", 0)
}

func (rt *Router) forward(r *http.Request, target string, body []byte, stampEpoch uint64) (*http.Response, error) {
	u := target + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Host":
			continue
		}
		req.Header[k] = vs
	}
	if stampEpoch > 0 {
		// The split-brain guard: a write stamped with the fleet epoch is
		// refused (409 epoch_fenced) by any node whose own epoch differs,
		// so a stale primary can never acknowledge a routed write.
		req.Header.Set(HeaderFleetEpoch, fmt.Sprintf("%d", stampEpoch))
	}
	return rt.opt.Client.Do(req)
}

func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, target string) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	h.Set(HeaderServedBy, target)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The upstream died mid-body (or the client went away). The status
		// line is already out, so the copy error cannot become an error
		// response; swallowing it would hand the client a truncated body
		// under a clean 200. Abort the connection instead — the client sees
		// a torn response it knows to distrust.
		rt.relayAborts.Add(1)
		rt.opt.Logf("router: relay from %s aborted mid-body: %v", target, err)
		panic(http.ErrAbortHandler)
	}
}

func writeRouterError(w http.ResponseWriter, status int, msg, code string, retryAfterSec int) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSec))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// nodeCounter returns the per-node counter slot for a target URL, creating
// it on first sight (topology is mutable now; counters survive role swaps).
func (rt *Router) nodeCounter(target string) *nodeCounters {
	rt.nodeMu.Lock()
	defer rt.nodeMu.Unlock()
	nc := rt.perNode[target]
	if nc == nil {
		nc = &nodeCounters{}
		rt.perNode[target] = nc
	}
	return nc
}

// handleHealth identifies the router itself on the same endpoint every node
// serves, so fleet tooling can probe a router URL without special-casing it.
// (A health probe against a *routed* path would be proxied to the primary.)
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	primary, _, _, epoch := rt.topology()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(HealthStatus{
		Role:       "router",
		FleetEpoch: epoch,
		Primary:    primary,
		UptimeSec:  int64(time.Since(rt.started).Seconds()),
		Promotions: uint64(rt.promotions.Load()),
		Demotions:  uint64(rt.demotions.Load()),
	})
}

// RouterStats is the router's /api/stats payload.
type RouterStats struct {
	Role       string   `json:"role"`
	Primary    string   `json:"primary"`
	Replicas   []string `json:"replicas"`
	FleetEpoch uint64   `json:"fleetEpoch,omitempty"`
	Reads      int64    `json:"reads"`
	Writes     int64    `json:"writes"`
	Sessions   int64    `json:"sessions"` // session-scoped requests pinned to the home node
	Proxied    int64    `json:"proxied"`
	Failovers  int64    `json:"failovers"`
	// RelayAborts counts responses killed mid-body because the upstream died
	// while the router was relaying — torn connections, never silent
	// truncated 200s.
	RelayAborts int64 `json:"relayAborts"`
	Errors      int64 `json:"errors"`
	// NoPrimary counts writes refused with 503 no_primary during election
	// windows; Promotions/Demotions/Retargeted count supervision actions.
	NoPrimary  int64                `json:"noPrimary,omitempty"`
	Promotions int64                `json:"promotions,omitempty"`
	Demotions  int64                `json:"demotions,omitempty"`
	Retargeted int64                `json:"retargeted,omitempty"`
	PerNode    map[string]NodeStats `json:"perNode"`
	Monitor    *MonitorStats        `json:"monitor,omitempty"`
}

// NodeStats is one upstream's share of router traffic.
type NodeStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// Stats snapshots routing counters.
func (rt *Router) Stats() RouterStats {
	primary, replicas, _, epoch := rt.topology()
	s := RouterStats{
		Role:        "router",
		Primary:     primary,
		Replicas:    replicas,
		FleetEpoch:  epoch,
		Reads:       rt.reads.Load(),
		Writes:      rt.writes.Load(),
		Sessions:    rt.sessions.Load(),
		Proxied:     rt.passthrough.Load(),
		Failovers:   rt.failovers.Load(),
		RelayAborts: rt.relayAborts.Load(),
		Errors:      rt.errors.Load(),
		NoPrimary:   rt.noPrimary.Load(),
		Promotions:  rt.promotions.Load(),
		Demotions:   rt.demotions.Load(),
		Retargeted:  rt.retargeted.Load(),
		PerNode:     map[string]NodeStats{},
	}
	rt.nodeMu.Lock()
	for name, nc := range rt.perNode {
		s.PerNode[name] = NodeStats{
			Requests: nc.requests.Load(),
			Errors:   nc.errors.Load(),
		}
	}
	rt.nodeMu.Unlock()
	if m := rt.Monitor(); m != nil {
		ms := m.Stats()
		s.Monitor = &ms
	}
	return s
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Stats())
}
