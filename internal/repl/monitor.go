package repl

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a node's circuit-breaker position in the health monitor.
type BreakerState int

const (
	// StateClosed: the node is healthy; probe every Interval.
	StateClosed BreakerState = iota
	// StateHalfOpen: one probe succeeded after the circuit opened; the node
	// is usable again but one more failure re-opens immediately.
	StateHalfOpen
	// StateOpen: FailThreshold consecutive probes failed; the node is out
	// of the read ring and re-probed on exponential backoff.
	StateOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// MonitorOptions tune the failure detector. Zero values take the defaults
// noted per field.
type MonitorOptions struct {
	Client *http.Client
	// Interval is the probe cadence for closed/half-open nodes (default 1s).
	Interval time.Duration
	// Timeout is the per-probe deadline (default min(Interval, 2s)): a
	// probe that outlives its own cadence tells us nothing extra.
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that opens the
	// circuit (default 3). One slow probe is weather; K in a row is a
	// dead node.
	FailThreshold int
	// BackoffMax caps the open-state re-probe backoff (default 15s).
	BackoffMax time.Duration
	Logf       func(format string, args ...any)
}

// Monitor is the router's failure detector: it probes every tracked node's
// health endpoint on a cadence and keeps a circuit breaker per node, so
// routing decisions ("is this node usable?", "who is the most caught-up
// replica?") read cached state instead of paying a network round trip.
type Monitor struct {
	opt MonitorOptions

	mu    sync.Mutex
	nodes map[string]*probeState

	probes   atomic.Int64
	failures atomic.Int64
	opens    atomic.Int64
}

type probeState struct {
	state   BreakerState
	fails   int           // consecutive failures while closed
	backoff time.Duration // current open-state re-probe delay
	due     time.Time     // next probe time while open
	health  *HealthStatus // last successful payload (possibly stale)
	lastErr error
}

// NewMonitor builds a monitor; Add nodes, then Run it.
func NewMonitor(opt MonitorOptions) *Monitor {
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = min(opt.Interval, healthDeadline)
	}
	if opt.FailThreshold <= 0 {
		opt.FailThreshold = 3
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 15 * time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	return &Monitor{opt: opt, nodes: map[string]*probeState{}}
}

// Add starts tracking a node (idempotent). New nodes begin closed — innocent
// until probed — so adding a node never blocks routing on a probe.
func (m *Monitor) Add(url string) {
	m.mu.Lock()
	if _, ok := m.nodes[url]; !ok {
		m.nodes[url] = &probeState{state: StateClosed}
	}
	m.mu.Unlock()
}

// Run probes on the Interval cadence until ctx is canceled. One round is
// issued immediately so a freshly started router has health data before its
// first routing decision.
func (m *Monitor) Run(ctx context.Context) {
	tick := time.NewTicker(m.opt.Interval)
	defer tick.Stop()
	for {
		m.ProbeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// ProbeOnce runs one probe round: every closed/half-open node, plus open
// nodes whose backoff has elapsed. Probes run concurrently and the call
// blocks until all complete (each is bounded by Timeout).
func (m *Monitor) ProbeOnce(ctx context.Context) {
	now := time.Now()
	var targets []string
	m.mu.Lock()
	for url, st := range m.nodes {
		if st.state != StateOpen || !now.Before(st.due) {
			targets = append(targets, url)
		}
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, url := range targets {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.opt.Timeout)
			h, err := FetchHealth(pctx, m.opt.Client, url)
			cancel()
			if ctx.Err() != nil {
				return // shutdown, not a verdict on the node
			}
			m.record(url, h, err)
		}(url)
	}
	wg.Wait()
}

// record applies one probe outcome to the node's breaker.
func (m *Monitor) record(url string, h *HealthStatus, err error) {
	m.probes.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.nodes[url]
	if st == nil {
		return // removed concurrently (not currently possible, but harmless)
	}
	if err == nil {
		st.health = h
		st.lastErr = nil
		st.fails = 0
		switch st.state {
		case StateOpen:
			st.state = StateHalfOpen
			m.opt.Logf("repl: monitor: %s half-open (probe succeeded)", url)
		case StateHalfOpen:
			st.state = StateClosed
			st.backoff = 0
			m.opt.Logf("repl: monitor: %s closed (recovered)", url)
		}
		return
	}
	m.failures.Add(1)
	st.lastErr = err
	switch st.state {
	case StateClosed:
		st.fails++
		if st.fails >= m.opt.FailThreshold {
			st.state = StateOpen
			st.backoff = m.opt.Interval
			st.due = time.Now().Add(st.backoff)
			m.opens.Add(1)
			m.opt.Logf("repl: monitor: %s open after %d consecutive failures (%v)", url, st.fails, err)
		}
	case StateHalfOpen:
		st.state = StateOpen
		st.backoff = max(st.backoff, m.opt.Interval)
		st.due = time.Now().Add(st.backoff)
		m.opens.Add(1)
		m.opt.Logf("repl: monitor: %s re-open (half-open probe failed: %v)", url, err)
	case StateOpen:
		st.backoff = min(st.backoff*2, m.opt.BackoffMax)
		st.due = time.Now().Add(st.backoff)
	}
}

// Available reports whether the node is usable for routing: anything but an
// open circuit. Unknown nodes are available (the monitor may simply not have
// been told about them).
func (m *Monitor) Available(url string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.nodes[url]
	return st == nil || st.state != StateOpen
}

// State returns the node's breaker state (closed for unknown nodes).
func (m *Monitor) State(url string) BreakerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.nodes[url]; st != nil {
		return st.state
	}
	return StateClosed
}

// Health returns the node's last successful health payload, which may be
// stale if the node has since failed probes; nil if none ever succeeded.
func (m *Monitor) Health(url string) *HealthStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.nodes[url]; st != nil {
		return st.health
	}
	return nil
}

// NodeProbe is one node's monitor view for stats.
type NodeProbe struct {
	State   string        `json:"state"`
	Fails   int           `json:"fails,omitempty"`
	LastErr string        `json:"lastErr,omitempty"`
	Health  *HealthStatus `json:"health,omitempty"`
}

// MonitorStats is the monitor counter block for router stats.
type MonitorStats struct {
	Probes   int64                `json:"probes"`
	Failures int64                `json:"failures"`
	Opens    int64                `json:"opens"`
	Nodes    map[string]NodeProbe `json:"nodes"`
}

// Stats snapshots the monitor.
func (m *Monitor) Stats() MonitorStats {
	s := MonitorStats{
		Probes:   m.probes.Load(),
		Failures: m.failures.Load(),
		Opens:    m.opens.Load(),
		Nodes:    map[string]NodeProbe{},
	}
	m.mu.Lock()
	for url, st := range m.nodes {
		np := NodeProbe{State: st.state.String(), Fails: st.fails, Health: st.health}
		if st.lastErr != nil {
			np.LastErr = st.lastErr.Error()
		}
		s.Nodes[url] = np
	}
	m.mu.Unlock()
	return s
}
