package repl_test

// Chaos-convergence suite: the replication fleet (primary + 2 replicas +
// router) with every fleet-internal link behind a deterministic
// fault-injection proxy (internal/chaos). A seeded schedule of drops,
// blackholes, latency, mid-body truncation, corrupt bytes, and synthetic
// 5xx plays against random mutations and routed reads, and the suite
// asserts the three fleet invariants:
//
//	(a) once faults stop, every replica converges to bit-equality with the
//	    primary (graph, cores, CL-tree, truss, ACQ answers);
//	(b) read-your-writes: a routed 200 carrying X-CExplorer-Min-Version
//	    never reports an older version, storm or no storm;
//	(c) nothing wedges: every stall is bounded by a configured deadline —
//	    replica per-phase timeouts, router client timeout, test client
//	    timeout — so the suite finishes on the clock, not on luck.
//
// Schedules are seed-derived (chaos.GenPlan) and ddmin-shrinkable
// (chaos.ShrinkPlan): a failure reports the seed and the schedule, and
// CEXPLORER_CHAOS_SHRINK=1 re-runs the fleet to neutralize every fault the
// failure does not need — the same repro-first discipline as the dyntest
// equivalence harness. The single-fault regression tests in this file are
// the shrunk schedules of the bugs this suite originally surfaced.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/chaos"
	"cexplorer/internal/dyntest"
	"cexplorer/internal/gen"
	"cexplorer/internal/repl"
)

// chaosTail are replica options for chaos runs: fast cadence and tight
// per-phase bounds, so every injected stall resolves on the test's clock.
// Keep-alives are off so each request is one proxied connection and the
// seeded schedule maps onto request order.
func chaosTail() repl.ReplicaOptions {
	return repl.ReplicaOptions{
		Client:        &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		PollWait:      300 * time.Millisecond,
		Refresh:       50 * time.Millisecond,
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    100 * time.Millisecond,
		HeaderTimeout: 250 * time.Millisecond,
		StallTimeout:  500 * time.Millisecond,
	}
}

func chaosProxyOpts(t *testing.T) chaos.Options {
	return chaos.Options{BlackholeHold: 600 * time.Millisecond, Logf: t.Logf}
}

// TestReplicaBoundedAgainstBlackhole is the shrunk regression for the
// unbounded-client bug: ReplicaOptions used to default to http.DefaultClient
// (no timeout), so the first blackholed connection wedged the tailer
// forever. With per-phase deadlines, a run whose first connections are all
// blackholes still discovers, bootstraps, and converges — each stall bounded
// by HeaderTimeout (or PollWait+HeaderTimeout for long-polls), then backoff.
func TestReplicaBoundedAgainstBlackhole(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	base := gen.GNMAttributed(30, 60, 4, 3)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	plan := make(chaos.Plan, 4)
	for i := range plan {
		plan[i] = chaos.Fault{Kind: chaos.Blackhole}
	}
	px, err := chaos.NewProxy(p.ts.URL, plan, chaosProxyOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	start := time.Now()
	r := startReplica(t, px.URL(), chaosTail())
	v := postMutations(t, p.ts.URL, "dyn", dyntest.GenOps(base, 10, 3))
	waitForConvergence(t, p.exp, r.exp, "dyn", v)

	// 4 blackholes at ≤ PollWait+HeaderTimeout each, plus the real work:
	// converging in a few seconds proves every stall was deadline-bounded.
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("converged only after %v behind 4 blackholes", elapsed)
	}
	if px.Injected(chaos.Blackhole) != 4 {
		t.Fatalf("blackholes injected: %d, want 4", px.Injected(chaos.Blackhole))
	}
	if st := r.rep.Stats(); st.NetErrors == 0 {
		t.Fatalf("blackholed requests left no error trace: %+v", st)
	}
}

// deleteDataset drops a dataset through the primary's HTTP surface.
func deleteDataset(t *testing.T, baseURL, name string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, baseURL+"/api/v1/datasets/"+name, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete %q: status %d", name, resp.StatusCode)
	}
}

// TestReplicaDropsDeletedDataset is the divergence regression: a dataset
// deleted at the primary used to 404 the journal poll forever while the
// replica served the ghost stale (netErrors climbing every cycle). Now the
// tailer counts consecutive misses, un-claims at MissingLimit, and drops the
// local copy; a re-created dataset is re-claimed and re-converges.
func TestReplicaDropsDeletedDataset(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	if _, err := p.exp.AddGraph("keep", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.exp.AddGraph("doomed", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	opt := chaosTail()
	opt.MissingLimit = 3
	r := startReplica(t, p.ts.URL, opt)
	v := postMutations(t, p.ts.URL, "doomed", []api.Mutation{{Op: api.OpAddEdge, U: 0, V: 5}})
	waitApplied(t, r.rep, "doomed", v)
	waitApplied(t, r.rep, "keep", 0)

	deleteDataset(t, p.ts.URL, "doomed")
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, here := r.exp.Dataset("doomed")
		_, claimed := r.rep.Status("doomed")
		if !here && !claimed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica still serves the deleted dataset: registered=%v claimed=%v stats=%+v",
				here, claimed, r.rep.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := r.rep.Stats(); st.Dropped == 0 {
		t.Fatalf("drop left no stats trace: %+v", st)
	}
	if _, ok := r.exp.Dataset("keep"); !ok {
		t.Fatal("unrelated dataset dropped alongside the deleted one")
	}

	// The name comes back at the primary: discovery re-claims, and the
	// replica converges on the new lineage from scratch.
	if _, err := p.exp.AddGraph("doomed", gen.GNMAttributed(20, 40, 3, 9)); err != nil {
		t.Fatal(err)
	}
	v = postMutations(t, p.ts.URL, "doomed", []api.Mutation{{Op: api.OpAddVertex, Name: "back"}})
	waitForConvergence(t, p.exp, r.exp, "doomed", v)
}

// TestReplicaReconnectsOnCorruptFrames: every journal/snapshot response body
// through the proxy gets one byte flipped. The CXJRNL frame CRC (and the
// snapshot checksums) must catch each flip so the replica reconnects and
// re-reads — and never applies a corrupt record. Bit-equality with the
// primary after the storm is the proof: one applied garbage byte would
// diverge the graphs for good.
func TestReplicaReconnectsOnCorruptFrames(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	base := gen.GNMAttributed(40, 90, 4, 9)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	plan := make(chaos.Plan, 40)
	for i := range plan {
		// Small offsets so the flip lands inside real payload bytes on
		// journal responses, headers-of-body on snapshots — all CRC-covered.
		plan[i] = chaos.Fault{Kind: chaos.Corrupt, After: (i * 13) % 160}
	}
	px, err := chaos.NewProxy(p.ts.URL, plan, chaosProxyOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	r := startReplica(t, px.URL(), chaosTail())

	ops := dyntest.GenOps(base, 40, 11)
	var v uint64
	for off := 0; off < len(ops); off += 5 {
		v = postMutations(t, p.ts.URL, "dyn", ops[off:min(off+5, len(ops))])
	}
	waitForConvergence(t, p.exp, r.exp, "dyn", v)
	if px.Injected(chaos.Corrupt) == 0 {
		t.Fatal("no corruption was injected; the test proved nothing")
	}
}

// --- the full fleet suite ---

// chaosLinks names the proxied links of the fleet, in schedule order.
var chaosLinks = [4]string{"replica1→primary", "replica2→primary", "router→replica1", "router→replica2"}

// genChaosSchedule derives the per-link schedules from one seed. The
// replication links get the full mix (corrupt bytes included: journal
// frames are CRC-framed, so replicas detect every flip). The router links
// exclude Corrupt — a flipped byte inside a JSON body is undetectable by a
// client with no checksum, so it cannot be part of a read-your-writes
// oracle; every other fault class is visible as an error or a torn
// connection and is scheduled freely.
func genChaosSchedule(seed int64) [4]chaos.Plan {
	replMix := chaos.Mix{None: 5, Drop: 2, Blackhole: 1, Latency: 2, Truncate: 2, Corrupt: 3, Err5xx: 2,
		MaxDelay: 80 * time.Millisecond, MaxAfter: 512}
	routeMix := chaos.Mix{None: 5, Drop: 2, Blackhole: 1, Latency: 2, Truncate: 2, Err5xx: 2,
		MaxDelay: 80 * time.Millisecond, MaxAfter: 512}
	return [4]chaos.Plan{
		chaos.GenPlan(seed+1, 60, replMix),
		chaos.GenPlan(seed+2, 60, replMix),
		chaos.GenPlan(seed+3, 40, routeMix),
		chaos.GenPlan(seed+4, 40, routeMix),
	}
}

// runChaosFleet stands up primary + 2 replicas + router with every
// fleet-internal link behind a fault proxy running its schedule, drives
// mutations (directly at the primary: writes are not faulted, so every
// version the oracle asserts on is a version the primary acknowledged) and
// routed min-version reads through the storm, then disables all faults and
// demands per-version bit-equality. Invariant violations come back as
// errors so a failing schedule can be replayed and shrunk; infrastructure
// failures still fail t directly.
func runChaosFleet(t *testing.T, sched [4]chaos.Plan, seed int64) error {
	t.Helper()
	p := startPrimary(t, repl.FeedOptions{})
	base := gen.GNMAttributed(50, 120, 5, seed)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	newProxy := func(upstream string, plan chaos.Plan) *chaos.Proxy {
		px, err := chaos.NewProxy(upstream, plan, chaosProxyOpts(t))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(px.Close)
		return px
	}
	pxP1 := newProxy(p.ts.URL, sched[0])
	pxP2 := newProxy(p.ts.URL, sched[1])
	r1 := startReplica(t, pxP1.URL(), chaosTail())
	r2 := startReplica(t, pxP2.URL(), chaosTail())
	pxF1 := newProxy(r1.ts.URL, sched[2])
	pxF2 := newProxy(r2.ts.URL, sched[3])
	proxies := []*chaos.Proxy{pxP1, pxP2, pxF1, pxF2}

	rt := repl.NewRouter(p.ts.URL, []string{pxF1.URL(), pxF2.URL()}, repl.RouterOptions{
		Client: &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}},
		Logf:   t.Logf,
	})
	frontTS := httptest.NewServer(rt.Handler())
	t.Cleanup(frontTS.Close)
	front := frontTS.URL
	client := &http.Client{Timeout: 4 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}

	// The storm: mutate, then read back through the faults. Reads may fail
	// in any fault-visible way (transport error, torn body, 5xx) — that is
	// chaos — but a clean 200 must honor the min-version bound, and no
	// request may outlive its client deadline by more than scheduling slack.
	ops := dyntest.GenOps(base, 96, seed*3+1)
	var v uint64
	for off := 0; off < len(ops); off += 4 {
		v = postMutations(t, p.ts.URL, "dyn", ops[off:min(off+4, len(ops))])
		req, _ := http.NewRequest("GET", front+"/api/v1/datasets/dyn", nil)
		req.Header.Set(repl.HeaderMinVersion, fmt.Sprint(v))
		start := time.Now()
		resp, err := client.Do(req)
		elapsed := time.Since(start)
		if elapsed > client.Timeout+2*time.Second {
			return fmt.Errorf("read at version %d stalled %v, past the %v client deadline", v, elapsed, client.Timeout)
		}
		if err != nil {
			continue // fault-visible failure: the storm at work
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue // torn or failed read: also fault-visible
		}
		var info struct {
			Version uint64 `json:"version"`
		}
		if json.Unmarshal(body, &info) != nil {
			continue // truncated-but-readable JSON prefix
		}
		if info.Version < v {
			return fmt.Errorf("read-your-writes violated at version %d: 200 body reports version %d (served by %s)",
				v, info.Version, resp.Header.Get(repl.HeaderServedBy))
		}
	}

	// Storm over: every link transparent, in-flight faults severed. The
	// fleet must now converge to bit-equality, bounded by the wait below.
	for _, px := range proxies {
		px.Disable()
	}
	for i, r := range []*replicaNode{r1, r2} {
		if err := waitConvergedErr(p.exp, r, v, 60*time.Second); err != nil {
			return fmt.Errorf("replica %d after the storm: %w", i+1, err)
		}
	}

	// And the routed read-your-writes path must be clean again end-to-end.
	req, _ := http.NewRequest("GET", front+"/api/v1/datasets/dyn", nil)
	req.Header.Set(repl.HeaderMinVersion, fmt.Sprint(v))
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("post-storm routed read: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("post-storm routed read: status %d", resp.StatusCode)
	}
	return nil
}

// waitConvergedErr is waitForConvergence returning an error instead of
// failing t, so chaos schedules can be replayed during shrinking.
func waitConvergedErr(pexp *api.Explorer, r *replicaNode, v uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		pds, ok1 := pexp.Dataset("dyn")
		rds, ok2 := r.exp.Dataset("dyn")
		if ok1 && ok2 && pds.Version == v && rds.Version == v {
			if last = dyntest.CheckConverged(pds, rds); last == nil {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if last == nil {
		var got uint64
		if rds, ok := r.exp.Dataset("dyn"); ok {
			got = rds.Version
		}
		last = fmt.Errorf("stuck at version %d, want %d (stats %+v)", got, v, r.rep.Stats())
	}
	return last
}

// TestChaosConvergence runs the seeded storm. On failure it reports the
// seed and, with CEXPLORER_CHAOS_SHRINK=1, ddmin-shrinks each link's
// schedule (neutralizing faults the failure does not need) before reporting
// — fleet replays are whole-cluster runs, so shrinking is opt-in rather
// than burning CI minutes on every red.
func TestChaosConvergence(t *testing.T) {
	const seed = 0xC0FFEE
	sched := genChaosSchedule(seed)
	err := runChaosFleet(t, sched, seed)
	if err == nil {
		return
	}
	if os.Getenv("CEXPLORER_CHAOS_SHRINK") != "" {
		for i := range sched {
			sched[i] = chaos.ShrinkPlan(sched[i], 3, func(cand chaos.Plan) bool {
				trial := sched
				trial[i] = cand
				return runChaosFleet(t, trial, seed) != nil
			})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos fleet failed (seed %#x): %v\n", seed, err)
	for i, pl := range sched {
		js, _ := json.Marshal(pl)
		fmt.Fprintf(&b, "  %s: %d faults: %s\n", chaosLinks[i], pl.Faults(), js)
	}
	if os.Getenv("CEXPLORER_CHAOS_SHRINK") == "" {
		b.WriteString("  (set CEXPLORER_CHAOS_SHRINK=1 to ddmin the schedule before reporting)\n")
	}
	t.Fatal(b.String())
}
