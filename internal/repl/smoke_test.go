package repl_test

// Multi-node smoke: a full in-process fleet — one primary, two replicas,
// one router — wired over real HTTP, driven by the loadgen harness through
// the router while writes mutate the dataset. The SLO bar is modest (this
// is CI, under -race), but hard: no failed requests, read-your-writes holds
// through the router, and reads actually land on replicas.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/loadgen"
	"cexplorer/internal/repl"
)

func TestMultiNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node smoke is a second-long wall-clock test")
	}
	p := startPrimary(t, repl.FeedOptions{})
	if _, err := p.exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	r1 := startReplica(t, p.ts.URL, fastTail())
	r2 := startReplica(t, p.ts.URL, fastTail())
	rt := repl.NewRouter(p.ts.URL, []string{r1.ts.URL, r2.ts.URL}, repl.RouterOptions{Logf: t.Logf})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Both replicas must have claimed the dataset before load starts.
	waitApplied(t, r1.rep, "fig5", 0)
	waitApplied(t, r2.rep, "fig5", 0)

	client := &http.Client{Timeout: 30 * time.Second}
	searchBody := []byte(`{"algorithm":"ACQ","names":["A"],"k":2}`)
	search := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, "POST",
			front.URL+"/api/v1/datasets/fig5/search", bytes.NewReader(searchBody))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return errShed
		default:
			return fmt.Errorf("status %d", resp.StatusCode)
		}
	}

	// Write churn in the background: vertices appended through the router
	// (which must steer every one to the primary), each read back through
	// the router with the min-version header — the read-your-writes
	// contract end to end.
	writerCtx, stopWriter := context.WithCancel(context.Background())
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := 0; writerCtx.Err() == nil; i++ {
			v, err := routedMutation(client, front.URL, fmt.Sprintf("smoke%d", i))
			if err != nil {
				writerDone <- fmt.Errorf("routed write %d: %w", i, err)
				return
			}
			got, err := routedMinVersionRead(client, front.URL, v)
			if err != nil {
				writerDone <- fmt.Errorf("routed read after write %d: %w", i, err)
				return
			}
			if got < v {
				writerDone <- fmt.Errorf("read-your-writes violated through router: wrote %d, read %d", v, got)
				return
			}
			select {
			case <-writerCtx.Done():
			case <-time.After(30 * time.Millisecond):
			}
		}
	}()

	rep := loadgen.Run(context.Background(), loadgen.Config{
		Rate:     150,
		Duration: 1500 * time.Millisecond,
		Poisson:  true,
		Timeout:  10 * time.Second,
		Classify: func(err error) loadgen.Outcome {
			if err == errShed {
				return loadgen.Shed
			}
			return loadgen.Failed
		},
	}, search)
	stopWriter()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	t.Logf("smoke: sent=%d ok=%d shed=%d failed=%d p50=%.1fms p99=%.1fms",
		rep.Sent, rep.OK, rep.Shed, rep.Failed, rep.P50MS, rep.P99MS)
	if rep.Failed != 0 {
		t.Fatalf("smoke run had %d failed requests: %+v", rep.Failed, rep)
	}
	if rep.OK == 0 {
		t.Fatalf("smoke run completed nothing: %+v", rep)
	}
	if rep.P99MS > 5000 {
		t.Fatalf("smoke p99 %.1fms blows the (very generous) SLO: %+v", rep.P99MS, rep)
	}

	// The fleet actually shared the load: reads on replicas, writes on the
	// primary, nothing unrouted.
	rs := rt.Stats()
	if rs.Reads == 0 || rs.Writes == 0 {
		t.Fatalf("router did not see both classes: %+v", rs)
	}
	repHits := rs.PerNode[r1.ts.URL].Requests + rs.PerNode[r2.ts.URL].Requests
	if repHits == 0 {
		t.Fatalf("no read landed on a replica: %+v", rs.PerNode)
	}
}

var errShed = fmt.Errorf("shed")

// routedMutation posts one addVertex through the router and returns the
// version it produced.
func routedMutation(client *http.Client, frontURL, name string) (uint64, error) {
	body, _ := json.Marshal(map[string]any{"op": api.OpAddVertex, "name": name, "keywords": []string{"w"}})
	resp, err := client.Post(frontURL+"/api/v1/datasets/fig5/mutations", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return 0, err
	}
	return out.Version, nil
}

// routedMinVersionRead fetches the dataset through the router demanding at
// least version v, returning the version actually observed.
func routedMinVersionRead(client *http.Client, frontURL string, v uint64) (uint64, error) {
	req, err := http.NewRequest("GET", frontURL+"/api/v1/datasets/fig5", nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(repl.HeaderMinVersion, fmt.Sprint(v))
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var info struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		return 0, err
	}
	return info.Version, nil
}
