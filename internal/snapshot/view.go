package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// Zero-copy view decoding. A v3 file's bulk arrays are 8-byte-aligned
// little-endian on disk, which is exactly their in-memory layout on every
// platform we serve — so DecodeView stitches []int32/[]int64 section
// payloads straight out of the backing bytes with unsafe.Slice, and string
// tables become string headers over the backing blob, instead of the rbuf
// copy decode. The caller owns the lifetime contract: the returned Snapshot
// (and everything reachable from it — graph, indexes, vocabulary) BORROWS
// the input bytes and stays valid only while they do. With a mapped file
// (see mmap_unix.go) that means until the mapping is unmapped.
//
// ErrNotZeroCopy marks inputs that are structurally sound but ineligible
// for borrowing — a pre-v3 layout, a big-endian host, or a misaligned
// payload. Open treats it as "fall back to the copy path", never as
// corruption.

// ErrNotZeroCopy reports that a snapshot cannot be view-decoded and must
// take the copy path. It is a fallback signal, not a corruption error.
var ErrNotZeroCopy = errors.New("snapshot not zero-copy eligible")

// hostLittleEndian reports whether native integer layout matches the file
// format. View decoding reinterprets file bytes as host integers, so it is
// little-endian-only; big-endian hosts always copy-decode.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// viewFail records the sticky ErrNotZeroCopy with a reason.
func (r *rbuf) viewFail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrNotZeroCopy, what)
	}
}

// viewI32s decodes an i32-array primitive as a view over the input bytes.
func (r *rbuf) viewI32s() []int32 {
	n := r.count(4)
	p := r.bytes(4 * n)
	if r.err != nil || n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&p[0]))%4 != 0 {
		r.viewFail("misaligned i32 array")
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), n)
}

// viewI64s decodes an i64-array primitive as a view over the input bytes.
func (r *rbuf) viewI64s() []int64 {
	n := r.count(8)
	p := r.bytes(8 * n)
	if r.err != nil || n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&p[0]))%8 != 0 {
		r.viewFail("misaligned i64 array")
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&p[0])), n)
}

// viewStrings decodes a string-table primitive with the string contents
// borrowed from the input blob: one []string header allocation, zero
// content copies. Offsets are validated exactly like the copy decoder's.
func (r *rbuf) viewStrings() []string {
	n := r.count(4) // at least one offset per entry
	offs := r.bytes(4 * (n + 1))
	if r.err != nil {
		return nil
	}
	blobLen := int(binary.LittleEndian.Uint32(offs[4*n:]))
	blob := r.bytes(blobLen)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		end := binary.LittleEndian.Uint32(offs[4*(i+1):])
		if end < prev || int(end) > blobLen {
			r.fail("snapshot: corrupt string table offsets")
			return nil
		}
		if end > prev {
			out[i] = unsafe.String(&blob[prev], int(end-prev))
		}
		prev = end
	}
	return out
}

// viewPairs reinterprets a flat i32 view of even length as edge pairs.
// [2]int32 has int32 alignment and no padding, so the cast is layout-exact.
func viewPairs(flat []int32) ([][2]int32, error) {
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("snapshot: odd edge-table length %d", len(flat))
	}
	if len(flat) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*[2]int32)(unsafe.Pointer(&flat[0])), len(flat)/2), nil
}
