package snapshot

import (
	"bytes"
	"sync"
	"testing"

	"cexplorer/internal/cltree"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/ktruss"
)

// The acceptance benchmark of the persistence subsystem: opening a
// snapshotted dataset (graph + all three indexes) must be ≥5x faster than
// the cold path — parsing edge-list/attribute text and rebuilding the
// CL-tree, core, and truss indexes — on a graph of ≥100k edges.
//
//	go test -bench 'Start' -benchtime 3x ./internal/snapshot
//
// then compare BenchmarkWarmStartSnapshot to BenchmarkColdStartParseAndIndex.

const (
	benchN = 40_000
	benchM = 120_000
)

var benchInput struct {
	once      sync.Once
	edgeText  []byte // "u v" lines
	attrText  []byte // "id\tname\tkw..." lines
	snapBytes []byte // full snapshot: graph + core + cltree + ktruss
}

func benchSetup(b testing.TB) {
	b.Helper()
	benchInput.once.Do(func() {
		g := randomAttributed(b, benchN, benchM, 1)
		var edges, attrs bytes.Buffer
		if err := g.WriteEdgeList(&edges); err != nil {
			b.Fatalf("edge list: %v", err)
		}
		if err := g.WriteAttributes(&attrs); err != nil {
			b.Fatalf("attributes: %v", err)
		}
		benchInput.edgeText = edges.Bytes()
		benchInput.attrText = attrs.Bytes()
		benchInput.snapBytes = encode(b, fullSnapshot(b, "bench", g))
	})
}

// coldStart is everything a restart used to cost: text parse + CSR build +
// core decomposition + CL-tree build + truss decomposition.
func coldStart(b testing.TB) (*graph.Graph, []int32, *cltree.Tree, *ktruss.Decomposition) {
	g, err := graph.LoadAttributed(bytes.NewReader(benchInput.edgeText), bytes.NewReader(benchInput.attrText))
	if err != nil {
		b.Fatalf("load: %v", err)
	}
	tree := cltree.Build(g)
	return g, kcore.Decompose(g), tree, ktruss.Decompose(g)
}

func BenchmarkColdStartParseAndIndex(b *testing.B) {
	benchSetup(b)
	b.SetBytes(int64(len(benchInput.edgeText) + len(benchInput.attrText)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, core, tree, truss := coldStart(b)
		if g.M() < 100_000 || core == nil || tree == nil || truss == nil {
			b.Fatalf("cold start incomplete")
		}
	}
}

func BenchmarkWarmStartSnapshot(b *testing.B) {
	benchSetup(b)
	b.SetBytes(int64(len(benchInput.snapBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Read(bytes.NewReader(benchInput.snapBytes))
		if err != nil {
			b.Fatalf("read: %v", err)
		}
		if s.Graph.M() < 100_000 || s.Core == nil || s.Tree == nil || s.Truss == nil {
			b.Fatalf("warm start incomplete")
		}
	}
}

// BenchmarkSnapshotWrite measures the persist cost (what an upload pays
// once so that every later boot is a warm start).
func BenchmarkSnapshotWrite(b *testing.B) {
	benchSetup(b)
	s, err := Read(bytes.NewReader(benchInput.snapBytes))
	if err != nil {
		b.Fatalf("read: %v", err)
	}
	b.SetBytes(int64(len(benchInput.snapBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(benchInput.snapBytes))
		if _, err := Write(&buf, s); err != nil {
			b.Fatalf("write: %v", err)
		}
	}
}

// TestWarmStartSpeedup is the acceptance criterion as a test: one cold
// start vs one warm open on the ≥100k-edge benchmark graph, requiring the
// ≥5x ratio with margin to spare on any plausible hardware.
func TestWarmStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		// Race instrumentation skews the two paths differently (the warm
		// path is allocation-heavy decode); the ratio is only meaningful —
		// and only asserted — on uninstrumented builds.
		t.Skip("race detector enabled")
	}
	benchSetup(t)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldStart(b)
		}
	})
	cold := res.NsPerOp()
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Read(bytes.NewReader(benchInput.snapBytes)); err != nil {
				b.Fatalf("read: %v", err)
			}
		}
	})
	warm := res.NsPerOp()
	t.Logf("cold start %.1fms, warm open %.1fms, speedup %.1fx",
		float64(cold)/1e6, float64(warm)/1e6, float64(cold)/float64(warm))
	if cold < 5*warm {
		t.Fatalf("warm open only %.1fx faster than cold start (want ≥5x): cold=%dns warm=%dns",
			float64(cold)/float64(warm), cold, warm)
	}
}
