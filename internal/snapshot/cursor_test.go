package snapshot

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func cursorRec(version uint64, u, v int32) JournalRecord {
	return JournalRecord{Version: version, Ops: []JournalOp{{Kind: JournalAddEdge, U: u, V: v}}}
}

func TestJournalCursorMissingFileIsEOF(t *testing.T) {
	c := OpenJournalCursor(filepath.Join(t.TempDir(), "nope.cxjournal"))
	defer c.Close()
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next on missing file = %v, want io.EOF", err)
	}
}

func TestJournalCursorTailsAcrossAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.cxjournal")
	c := OpenJournalCursor(path)
	defer c.Close()

	if err := AppendJournal(path, cursorRec(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Next()
	if err != nil || rec.Version != 1 {
		t.Fatalf("Next = %+v, %v; want version 1", rec, err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("caught-up Next = %v, want io.EOF", err)
	}

	// Records appended after the cursor hit EOF must become visible.
	if err := AppendJournal(path, cursorRec(2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := AppendJournal(path, cursorRec(3, 2, 3)); err != nil {
		t.Fatal(err)
	}
	for want := uint64(2); want <= 3; want++ {
		rec, err := c.Next()
		if err != nil || rec.Version != want {
			t.Fatalf("Next = %+v, %v; want version %d", rec, err, want)
		}
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("final Next = %v, want io.EOF", err)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
}

func TestJournalCursorTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.cxjournal")
	if err := AppendJournal(path, cursorRec(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := AppendJournal(path, cursorRec(2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the final frame: a crash mid-append.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 12; cut += 3 {
		torn := filepath.Join(t.TempDir(), "torn.cxjournal")
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c := OpenJournalCursor(torn)
		rec, err := c.Next()
		if err != nil || rec.Version != 1 {
			t.Fatalf("cut=%d: first Next = %+v, %v", cut, rec, err)
		}
		if _, err := c.Next(); err != io.EOF {
			t.Fatalf("cut=%d: torn-tail Next = %v, want io.EOF", cut, err)
		}
		if c.Pending() == 0 {
			t.Fatalf("cut=%d: Pending = 0, want torn bytes", cut)
		}
		c.Close()
	}
}

func TestJournalCursorCorruptTailIsEOFNotError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.cxjournal")
	if err := AppendJournal(path, cursorRec(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of a second record: checksum-failing tail.
	if err := AppendJournal(path, cursorRec(2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := OpenJournalCursor(path)
	defer c.Close()
	if rec, err := c.Next(); err != nil || rec.Version != 1 {
		t.Fatalf("first Next = %+v, %v", rec, err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("checksum-failing tail Next = %v, want io.EOF", err)
	}
}

func TestJournalCursorBadHeaderIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.cxjournal")
	if err := os.WriteFile(path, []byte("NOTJRNLxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := OpenJournalCursor(path)
	defer c.Close()
	if _, err := c.Next(); err == nil || err == io.EOF {
		t.Fatalf("bad-magic Next = %v, want hard error", err)
	}
}

// TestJournalCursorConcurrentAppend drives a writer and a tailer at the
// same file: every record the writer fsyncs must eventually surface, in
// order, and the cursor must never report corruption.
func TestJournalCursorConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.cxjournal")
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			if err := AppendJournal(path, cursorRec(uint64(i), int32(i), int32(i+1))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	c := OpenJournalCursor(path)
	defer c.Close()
	next := uint64(1)
	for next <= n {
		rec, err := c.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", next-1, err)
		}
		if rec.Version != next {
			t.Fatalf("out of order: got version %d, want %d", rec.Version, next)
		}
		next++
	}
	wg.Wait()
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("drained Next = %v, want io.EOF", err)
	}
}

func TestEncodeDecodeJournalFrame(t *testing.T) {
	rec := JournalRecord{Version: 42, Ops: []JournalOp{
		{Kind: JournalAddVertex, U: -1, V: -1, Name: "alice", Keywords: []string{"db", "ml"}},
		{Kind: JournalAddEdge, U: 3, V: 9},
	}}
	frame := EncodeJournalFrame(rec)
	got, err := DecodeJournalFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 42 || len(got.Ops) != 2 || got.Ops[0].Name != "alice" || got.Ops[1].V != 9 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// A frame is byte-identical to what AppendJournal writes after the header.
	path := filepath.Join(t.TempDir(), "g.cxjournal")
	if err := AppendJournal(path, rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[8:], frame) {
		t.Fatal("EncodeJournalFrame differs from AppendJournal's frame bytes")
	}
	if _, err := DecodeJournalFrame(frame[:len(frame)-2]); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
	frame[5] ^= 0x40
	if _, err := DecodeJournalFrame(frame); err == nil {
		t.Fatal("corrupt frame decoded without error")
	}
}

func TestFrameReaderStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 1; i <= 3; i++ {
		buf.Write(EncodeJournalFrame(cursorRec(uint64(i), int32(i), int32(i+1))))
	}
	full := buf.Bytes()

	fr := NewFrameReader(bytes.NewReader(full))
	for want := uint64(1); want <= 3; want++ {
		rec, err := fr.Next()
		if err != nil || rec.Version != want {
			t.Fatalf("Next = %+v, %v; want version %d", rec, err, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("clean end Next = %v, want io.EOF", err)
	}

	// Truncation mid-frame is ErrUnexpectedEOF, not a clean end.
	fr = NewFrameReader(bytes.NewReader(full[:len(full)-5]))
	fr.Next()
	fr.Next()
	if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated stream Next = %v, want io.ErrUnexpectedEOF", err)
	}

	// A corrupted frame on a stream is a hard error.
	bad := append([]byte(nil), full...)
	bad[len(bad)-6] ^= 0x01
	fr = NewFrameReader(bytes.NewReader(bad))
	fr.Next()
	fr.Next()
	if _, err := fr.Next(); err == nil || err == io.EOF || err == io.ErrUnexpectedEOF {
		t.Fatalf("corrupt stream Next = %v, want checksum error", err)
	}
}
