package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk layout (all integers little-endian):
//
//	magic   "CXSNAP"                     6 bytes
//	version uint16                       1, 2, or 3
//	sections, repeated:
//	    id         uint32
//	    reserved   uint32                v3 only (zero; pads the header to 16)
//	    payloadLen uint64
//	    payload    payloadLen bytes
//	    padding    0–7 zero bytes        v3 only (next header 8-aligned)
//	trailer uint32                       CRC-32C (Castagnoli) of every
//	                                     preceding byte
//
// Versions 1 and 2 share the original unaligned layout (12-byte section
// headers, no padding) and always decode through the copy path. Version 3
// is the zero-copy layout: magic+version occupy exactly 8 bytes, section
// headers are 16 bytes, and every payload is padded to an 8-byte boundary —
// so every payload starts 8-aligned, which puts i64 array data on 8-byte
// and i32 array data on (at least) 4-byte addresses. A mapped v3 file can
// therefore serve its bulk arrays in place via unsafe.Slice (see view.go)
// instead of copying them onto the heap.
//
// Section payloads are themselves built from three primitives, each
// designed so that loading is a sequential bulk read — a length followed by
// a contiguous array, never a per-element structure:
//
//	i32 array:    count uint64 | count × int32
//	i64 array:    count uint64 | count × int64
//	string table: count uint64 | (count+1) × uint32 offsets | blob bytes
//
// Unknown section ids are skipped on read, so newer writers can add
// sections without breaking older readers; a bumped version number is
// reserved for incompatible changes and is rejected outright.

// Format selects the on-disk layout Write emits. FormatV2 exists for
// fixtures and downgrade interop; new files should use the default.
const (
	// FormatV2 is the unaligned legacy layout (versions 1 and 2 are
	// byte-identical; 2 marks the last copy-only writer generation).
	FormatV2 uint16 = 2
	// FormatV3 is the aligned layout eligible for zero-copy mapped opens.
	FormatV3 uint16 = 3
	// DefaultFormat is what Write and WriteFile emit.
	DefaultFormat = FormatV3
)

const (
	maxVersion      = FormatV3
	trailerLen      = 4 // crc32
	sectionHdrLen   = 4 + 8
	sectionHdrLenV3 = 4 + 4 + 8
	sectionAlign    = 8
)

// aligned reports whether a format version uses the padded v3 layout.
func aligned(ver uint16) bool { return ver >= FormatV3 }

// sectionPad returns the number of zero bytes that follow a v3 payload.
func sectionPad(payloadLen uint64) int {
	return int((sectionAlign - payloadLen%sectionAlign) % sectionAlign)
}

var (
	magic      = [6]byte{'C', 'X', 'S', 'N', 'A', 'P'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Section ids. Values are part of the format; never renumber.
const (
	secMeta    uint32 = 1  // name, counts, flags — first section, always present
	secOffsets uint32 = 2  // graph CSR offsets, []int64 (n+1)
	secAdj     uint32 = 3  // graph adjacency, []int32 (2m)
	secKwOff   uint32 = 4  // keyword offsets, []int32 (n+1)
	secKwData  uint32 = 5  // keyword arena, []int32
	secVocab   uint32 = 6  // vocabulary string table
	secNames   uint32 = 7  // display-name string table (named graphs only)
	secCore    uint32 = 8  // core numbers, []int32 (n)
	secTree    uint32 = 9  // CL-tree arenas (cltree.Flat)
	secTruss   uint32 = 10 // truss decomposition: edge table + trussness
	secVersion uint32 = 11 // dataset mutation-version counter, uint64
)

func sectionName(id uint32) string {
	switch id {
	case secMeta:
		return "meta"
	case secOffsets:
		return "graph-offsets"
	case secAdj:
		return "graph-adjacency"
	case secKwOff:
		return "keyword-offsets"
	case secKwData:
		return "keyword-arena"
	case secVocab:
		return "vocabulary"
	case secNames:
		return "names"
	case secCore:
		return "core-numbers"
	case secTree:
		return "cltree"
	case secTruss:
		return "ktruss"
	case secVersion:
		return "dataset-version"
	default:
		return fmt.Sprintf("unknown(%d)", id)
	}
}

// --- write side ---

// countingCRCWriter threads every written byte through the running checksum
// so the trailer can be emitted without buffering the whole file.
type countingCRCWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *countingCRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// wbuf wraps an output sink with sticky-error primitive encoders and a
// reusable chunk buffer, so large arrays stream through a fixed-size
// scratch instead of being materialized as bytes. The sink is either the
// checksummed writer (envelope and trailer) or a plain in-memory buffer
// (section payloads encoded in parallel; their bytes pass through the
// checksum when the buffers are stitched together in order).
type wbuf struct {
	w       io.Writer
	cw      *countingCRCWriter // set when w is the checksummed sink
	err     error
	scratch []byte

	// aligned selects the v3 layout: 16-byte section headers, payloads
	// padded to 8 bytes. sectionHeader records the pending pad length and
	// endSection emits it, so section encoders stay layout-agnostic.
	aligned bool
	pad     int
}

func newWbuf(w io.Writer, aligned bool) *wbuf {
	cw := &countingCRCWriter{w: w}
	return &wbuf{w: cw, cw: cw, scratch: make([]byte, 1<<16), aligned: aligned}
}

// newMemWbuf encodes into an in-memory buffer with no checksum threading —
// the parallel-encode path.
func newMemWbuf(buf *bytes.Buffer, aligned bool) *wbuf {
	return &wbuf{w: buf, scratch: make([]byte, 1<<16), aligned: aligned}
}

func (b *wbuf) write(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *wbuf) u16(v uint16) {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	b.write(tmp[:])
}

func (b *wbuf) u32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.write(tmp[:])
}

func (b *wbuf) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.write(tmp[:])
}

func (b *wbuf) sectionHeader(id uint32, payloadLen uint64) {
	b.u32(id)
	if b.aligned {
		b.u32(0) // reserved; pads the header to 16 bytes
		b.pad = sectionPad(payloadLen)
	}
	b.u64(payloadLen)
}

// endSection emits the payload padding the last sectionHeader implies (a
// no-op in the legacy layout). Write calls it after every section encoder.
func (b *wbuf) endSection() {
	if b.pad > 0 {
		var zeros [sectionAlign]byte
		b.write(zeros[:b.pad])
		b.pad = 0
	}
}

// i32s writes an i32-array primitive (count + bulk payload).
func (b *wbuf) i32s(s []int32) {
	b.u64(uint64(len(s)))
	for len(s) > 0 && b.err == nil {
		chunk := s
		if len(chunk) > len(b.scratch)/4 {
			chunk = chunk[:len(b.scratch)/4]
		}
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(b.scratch[4*i:], uint32(v))
		}
		b.write(b.scratch[:4*len(chunk)])
		s = s[len(chunk):]
	}
}

// i64s writes an i64-array primitive.
func (b *wbuf) i64s(s []int64) {
	b.u64(uint64(len(s)))
	for len(s) > 0 && b.err == nil {
		chunk := s
		if len(chunk) > len(b.scratch)/8 {
			chunk = chunk[:len(b.scratch)/8]
		}
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(b.scratch[8*i:], uint64(v))
		}
		b.write(b.scratch[:8*len(chunk)])
		s = s[len(chunk):]
	}
}

// strings writes a string-table primitive.
func (b *wbuf) strings(s []string) {
	b.u64(uint64(len(s)))
	off := uint32(0)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], off)
	b.write(tmp[:])
	for _, w := range s {
		off += uint32(len(w))
		binary.LittleEndian.PutUint32(tmp[:], off)
		b.write(tmp[:])
	}
	for _, w := range s {
		b.write([]byte(w))
	}
}

// Payload-size formulas, used to emit section headers without buffering.

func i32sLen(n int) uint64 { return 8 + 4*uint64(n) }

func i64sLen(n int) uint64 { return 8 + 8*uint64(n) }

func stringsLen(s []string) (uint64, error) {
	blob := uint64(0)
	for _, w := range s {
		blob += uint64(len(w))
	}
	if blob > 1<<32-1 {
		return 0, fmt.Errorf("snapshot: string blob of %d bytes exceeds format limit", blob)
	}
	return 8 + 4*uint64(len(s)+1) + blob, nil
}

// --- read side ---

// rbuf is a sticky-error cursor over the fully read (and checksum-verified)
// file contents. Array decodes bound-check the declared count against the
// remaining bytes before allocating, so even a crafted file that passes the
// CRC cannot trigger an outsized allocation.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *rbuf) remaining() int { return len(r.b) - r.off }

func (r *rbuf) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("snapshot: truncated payload (want %d bytes, have %d)", n, r.remaining())
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *rbuf) u16() uint16 {
	p := r.bytes(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *rbuf) u32() uint32 {
	p := r.bytes(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *rbuf) u64() uint64 {
	p := r.bytes(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// count reads a u64 element count and checks it against the bytes left at
// elemSize bytes per element.
func (r *rbuf) count(elemSize int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.remaining()/elemSize) {
		r.fail("snapshot: declared %d elements but only %d bytes remain", n, r.remaining())
		return 0
	}
	return int(n)
}

// i32s decodes an i32-array primitive with a sequential bulk read.
func (r *rbuf) i32s() []int32 {
	n := r.count(4)
	p := r.bytes(4 * n)
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out
}

// i64s decodes an i64-array primitive.
func (r *rbuf) i64s() []int64 {
	n := r.count(8)
	p := r.bytes(8 * n)
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out
}

// strings decodes a string-table primitive.
func (r *rbuf) strings() []string {
	n := r.count(4) // at least one offset per entry
	offs := r.bytes(4 * (n + 1))
	if r.err != nil {
		return nil
	}
	blobLen := int(binary.LittleEndian.Uint32(offs[4*n:]))
	blob := r.bytes(blobLen)
	if r.err != nil {
		return nil
	}
	out := make([]string, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		end := binary.LittleEndian.Uint32(offs[4*(i+1):])
		if end < prev || int(end) > blobLen {
			r.fail("snapshot: corrupt string table offsets")
			return nil
		}
		out[i] = string(blob[prev:end])
		prev = end
	}
	return out
}
