package snapshot

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the committed testdata fixtures")

// goldenSnapshot builds the deterministic snapshot behind the committed
// fixture: the paper's Figure 5 graph with every index, a fixed creation
// stamp, and a fixed version counter.
func goldenSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	s := fullSnapshot(t, "golden", testGraph(t))
	s.Version = 7
	s.Created = time.Unix(1700000000, 0).UTC()
	return s
}

// TestGoldenV2Fixture pins the legacy v2 wire format to a committed file:
// old snapshots written before the aligned v3 layout must keep opening, via
// the copy path, forever. The fixture is byte-compared in both directions —
// decode must reproduce the snapshot, and re-encoding the decoded snapshot
// must reproduce the fixture bit for bit.
func TestGoldenV2Fixture(t *testing.T) {
	path := filepath.Join("testdata", "golden_v2.cxsnap")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, encodeFormat(t, goldenSnapshot(t), FormatV2), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
	fixture, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-golden to regenerate): %v", err)
	}

	got, err := Decode(fixture)
	if err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
	if got.Format != FormatV2 || got.ZeroCopy || got.Graph.Borrowed() {
		t.Fatalf("fixture decoded as Format=%d ZeroCopy=%v Borrowed=%v", got.Format, got.ZeroCopy, got.Graph.Borrowed())
	}
	if got.Name != "golden" || got.Version != 7 {
		t.Fatalf("fixture identity: %q v%d", got.Name, got.Version)
	}
	if want := time.Unix(1700000000, 0).UTC(); !got.Created.Equal(want) {
		t.Fatalf("fixture Created = %v, want %v", got.Created, want)
	}
	checkGraphEqual(t, testGraph(t), got.Graph)
	if got.Core == nil || got.Tree == nil || got.Truss == nil {
		t.Fatalf("fixture missing indexes: core=%v tree=%v truss=%v", got.Core != nil, got.Tree != nil, got.Truss != nil)
	}

	// The pre-v3 layout must never satisfy the view decoder.
	if _, err := DecodeView(fixture); !errors.Is(err, ErrNotZeroCopy) {
		t.Fatalf("DecodeView(fixture) = %v, want ErrNotZeroCopy", err)
	}

	// Round-trip byte identity: the v2 writer is still an exact inverse of
	// the decoder, so re-persisting a legacy dataset cannot silently churn
	// its bytes.
	re := encodeFormat(t, got, FormatV2)
	if !bytes.Equal(re, fixture) {
		t.Fatalf("re-encoded fixture differs: %d bytes vs %d committed", len(re), len(fixture))
	}

	// And the same dataset upgrades cleanly: decode v2, write v3, view it.
	up := encodeFormat(t, got, FormatV3)
	view, err := DecodeView(up)
	if err != nil {
		t.Fatalf("view of upgraded fixture: %v", err)
	}
	checkGraphEqual(t, got.Graph, view.Graph)
	checkTreeEqual(t, got.Tree, view.Tree)
	checkTrussEqual(t, got.Graph, got.Truss, view.Truss)
}
