//go:build !unix

package snapshot

import "errors"

// errNoMmap makes OpenAuto fall back to the copy path and OpenMmap fail
// with a clear message on platforms without memory-mapped files.
var errNoMmap = errors.New("memory-mapped files not supported on this platform")

func mmapFile(path string) ([]byte, error) { return nil, errNoMmap }

func munmap(data []byte) {}
