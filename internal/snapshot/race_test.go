//go:build race

package snapshot

// raceEnabled reports that the race detector instruments this build; the
// wall-clock speedup assertion is skipped there (see TestWarmStartSpeedup).
const raceEnabled = true
