package snapshot

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// File-level opening with an explicit storage mode. The copy path slurps
// the file and heap-decodes it (the pre-v3 behavior); the mmap path maps
// the file read-only, verifies the CRC over the mapped pages, and
// view-decodes in place, so a cold open allocates O(1) bulk-array memory
// regardless of graph size and resident cost is shared with the page cache.
//
// The mapped file must remain untouched for the mapping's lifetime.
// WriteFile always replaces snapshots via rename — the old inode (and thus
// every live mapping of it) survives until unmapped — so the catalog's
// persist-over path is safe; truncating a mapped snapshot in place is the
// one way to get SIGBUS, and nothing in this repository does it.

// OpenMode selects how OpenFile materializes a snapshot.
type OpenMode string

const (
	// OpenAuto view-decodes over a mapping when the file and host are
	// eligible, and silently falls back to the copy path otherwise
	// (pre-v3 files, big-endian hosts, platforms without mmap).
	OpenAuto OpenMode = "auto"
	// OpenMmap requires the zero-copy path and fails when ineligible.
	OpenMmap OpenMode = "mmap"
	// OpenCopy always heap-decodes (the pre-v3 behavior).
	OpenCopy OpenMode = "copy"
)

// ParseOpenMode validates a -open.mode flag value.
func ParseOpenMode(s string) (OpenMode, error) {
	switch OpenMode(s) {
	case OpenAuto, OpenMmap, OpenCopy:
		return OpenMode(s), nil
	case "":
		return OpenAuto, nil
	default:
		return "", fmt.Errorf("snapshot: unknown open mode %q (want auto, mmap, or copy)", s)
	}
}

// Mapping is a reference-counted read-only file mapping backing one or
// more view-decoded snapshots. It starts with one reference owned by the
// OpenFile caller; pinners take extra references with Retain and drop them
// with Release, and the pages are unmapped when the count reaches zero.
type Mapping struct {
	data []byte
	refs atomic.Int64
}

func newMapping(data []byte) *Mapping {
	m := &Mapping{data: data}
	m.refs.Store(1)
	return m
}

// Size returns the mapped byte count.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// Retain takes an additional reference. It fails (returning false) once
// the count has reached zero: the pages are gone or going, and handing out
// a reference would resurrect a dead mapping.
func (m *Mapping) Retain() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference, unmapping the pages when the last holder
// lets go. After that, every borrowed view over the mapping is invalid.
func (m *Mapping) Release() {
	if m.refs.Add(-1) == 0 {
		munmap(m.data)
		m.data = nil
	}
}

// OpenFile opens the snapshot at path under the given mode. The returned
// Mapping is non-nil exactly when the snapshot was view-decoded over a
// live mapping; the caller owns one reference and must Release it when the
// snapshot (and everything borrowed from it) is no longer in use. Copy
// opens return a nil Mapping and an ordinary heap-owned snapshot.
func OpenFile(path string, mode OpenMode) (*Snapshot, *Mapping, error) {
	switch mode {
	case OpenCopy:
		s, err := ReadFile(path)
		return s, nil, err
	case OpenAuto, OpenMmap:
	default:
		return nil, nil, fmt.Errorf("snapshot: unknown open mode %q", mode)
	}

	data, merr := mmapFile(path)
	if merr != nil {
		if mode == OpenMmap {
			return nil, nil, fmt.Errorf("snapshot: mmap %s: %w", path, merr)
		}
		s, err := ReadFile(path) // no mmap on this platform (or it failed): copy
		return s, nil, err
	}
	s, err := DecodeView(data)
	if err != nil {
		if mode == OpenAuto && errors.Is(err, ErrNotZeroCopy) {
			// Structurally sound but not view-eligible (legacy layout,
			// endianness, alignment): copy-decode from the already-mapped
			// bytes — one sequential pass, no second file read — then drop
			// the mapping.
			s, err = Decode(data)
			munmap(data)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			return s, nil, nil
		}
		munmap(data)
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, newMapping(data), nil
}

// statSize returns the file's size, rejecting zero-length and oversized
// files before mapping.
func statSize(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	if size <= 0 {
		return 0, fmt.Errorf("empty file")
	}
	if size != int64(int(size)) {
		return 0, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	return size, nil
}
