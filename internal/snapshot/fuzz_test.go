package snapshot

import (
	"bytes"
	"os"
	"testing"

	"cexplorer/internal/gen"
)

// fuzzSeedSnapshot builds a small but fully featured snapshot (named,
// attributed graph with all three indexes absent — plus one with indexes)
// for the decoder corpus.
func fuzzSeedSnapshot(t interface{ Fatal(...any) }) []byte {
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	var buf bytes.Buffer
	if _, err := Write(&buf, &Snapshot{Name: "seed", Graph: d.Graph, Version: 3}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode drives arbitrary bytes through the full snapshot
// decoder. The contract under test: Decode returns an error for anything
// damaged and NEVER panics — header corruption, section framing lies, CRC
// tampering, truncation, all of it.
func FuzzSnapshotDecode(f *testing.F) {
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])           // truncation
	f.Add([]byte("CXSNAP"))             // bare magic
	f.Add([]byte("not a snapshot"))     // foreign bytes
	f.Add(bytes.Repeat([]byte{0}, 64))  // zeros
	f.Add(append([]byte(nil), seed...)) // mutatable copy
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0x40 // body flip: CRC must catch it
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must yield a coherent dataset: the graph's
		// full structural validator is the strongest cheap oracle here.
		if s.Graph == nil {
			t.Fatal("decode returned nil graph without error")
		}
		if err := s.Graph.Validate(); err != nil {
			// The decoder intentionally skips the O(m log m) deep adjacency
			// re-validation on trusted (checksummed) input, so a crafted
			// file that satisfies the checksum can carry a structurally
			// invalid graph; what matters for the fuzz contract is that
			// nothing panicked on the way here.
			t.Skip("decoded graph fails deep validation (crafted input)")
		}
	})
}

// FuzzJournalDecode drives arbitrary bytes through the mutation-journal
// decoder: errors or clean tail-drops only, never panics, and never an
// absurd allocation (the decoder bounds every count against remaining
// payload).
func FuzzJournalDecode(f *testing.F) {
	var buf bytes.Buffer
	buf.Write(journalMagic[:])
	buf.WriteByte(1)
	buf.WriteByte(0)
	f.Add(buf.Bytes()) // bare header
	f.Add([]byte("CXJRNL"))
	f.Add([]byte{})
	// A real journal with two records.
	dir := f.TempDir()
	path := dir + "/seed.cxjournal"
	if err := AppendJournal(path, JournalRecord{Version: 1, Ops: []JournalOp{
		{Kind: JournalAddEdge, U: 1, V: 2},
		{Kind: JournalAddVertex, Name: "n", Keywords: []string{"a", "b"}},
	}}); err != nil {
		f.Fatal(err)
	}
	if err := AppendJournal(path, JournalRecord{Version: 2, Ops: []JournalOp{
		{Kind: JournalRemoveEdge, U: 1, V: 2},
	}}); err != nil {
		f.Fatal(err)
	}
	recs, _, err := ReadJournal(path)
	if err != nil || len(recs) != 2 {
		f.Fatalf("seed journal: %v (%d records)", err, len(recs))
	}
	data, err := readFileBytes(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)-3]) // torn tail

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, dropped, err := DecodeJournal(b)
		if err != nil {
			return
		}
		if dropped < 0 {
			t.Fatalf("negative dropped count %d", dropped)
		}
		for _, r := range recs {
			for _, op := range r.Ops {
				switch op.Kind {
				case JournalAddEdge, JournalRemoveEdge, JournalAddVertex:
				default:
					t.Fatalf("decoder passed through unknown op kind %d", op.Kind)
				}
			}
		}
	})
}

func readFileBytes(path string) ([]byte, error) {
	return os.ReadFile(path)
}
