package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Incremental journal access: the replication-facing half of the journal
// format. ReadJournal slurps a whole file — right for boot-time replay,
// wrong for a primary shipping a live journal to replicas. JournalCursor
// reads a journal frame-at-a-time from a byte offset and treats "no
// complete frame yet" as a clean, retryable EOF, so a tailer can poll a
// file that another goroutine is still appending to. FrameReader applies
// the same frame discipline to an io.Reader (the HTTP shipping stream),
// where there is no header and a short read is a hard truncation error,
// not a tail to wait out.

// maxJournalFrame bounds a single frame's payload. A length prefix larger
// than this is treated as a torn tail (a crash can leave arbitrary bytes in
// the length slot), never as a frame to wait for.
const maxJournalFrame = 1 << 28 // 256 MiB

// EncodeJournalFrame renders one record as a shippable frame:
// payloadLen | payload | crc — exactly the bytes AppendJournal writes after
// the file header. A stream of these frames is what the journal-shipping
// endpoint serves and what FrameReader decodes.
func EncodeJournalFrame(rec JournalRecord) []byte {
	payload := encodeJournalPayload(rec)
	out := make([]byte, 0, 4+len(payload)+4)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out
}

// DecodeJournalFrame decodes one frame produced by EncodeJournalFrame.
func DecodeJournalFrame(frame []byte) (JournalRecord, error) {
	if len(frame) < 8 {
		return JournalRecord{}, fmt.Errorf("journal: frame too short (%d bytes)", len(frame))
	}
	plen := int(binary.LittleEndian.Uint32(frame))
	if plen > maxJournalFrame || len(frame) != 4+plen+4 {
		return JournalRecord{}, fmt.Errorf("journal: frame length %d does not match %d payload bytes", len(frame), plen)
	}
	payload := frame[4 : 4+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4+plen:]) {
		return JournalRecord{}, fmt.Errorf("journal: frame checksum mismatch")
	}
	return decodeJournalPayload(payload)
}

// JournalCursor reads a journal file incrementally. Next returns records in
// file order; when it runs out of complete, checksum-clean frames it
// returns io.EOF without advancing, and a later Next observes any bytes
// appended since — the contract a journal tailer needs. A missing file is
// the empty journal (a dataset that has never been mutated), also io.EOF.
type JournalCursor struct {
	path string
	f    *os.File
	off  int64 // offset of the next unread frame
	hdr  bool  // file header validated
}

// OpenJournalCursor positions a cursor at the start of the journal at path.
// The file need not exist yet; the cursor will pick it up once the first
// append creates it.
func OpenJournalCursor(path string) *JournalCursor {
	return &JournalCursor{path: path}
}

// Close releases the underlying file. The cursor remains usable; a later
// Next reopens.
func (c *JournalCursor) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Offset reports the file offset of the next unread frame (after the header
// once any record has been read or the header validated).
func (c *JournalCursor) Offset() int64 { return c.off }

// Pending reports how many bytes sit at or beyond the cursor without
// forming a complete intact frame — zero when fully caught up. After Next
// returns io.EOF, a nonzero Pending on a quiescent file is a torn tail.
func (c *JournalCursor) Pending() int64 {
	if c.f == nil {
		return 0
	}
	st, err := c.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size() - c.off
}

// Next returns the next intact record. io.EOF means "nothing more right
// now": the file is missing, ends exactly at the cursor, or ends in a
// partial or checksum-failing frame (an append in flight, or a crash tail).
// Any other error is real corruption — a bad header or a checksummed frame
// with a malformed body — and the cursor stays put.
func (c *JournalCursor) Next() (JournalRecord, error) {
	rec, _, err := c.next()
	return rec, err
}

// NextFrame is Next, also returning the raw frame bytes (payloadLen |
// payload | crc) so a shipper can forward records without re-encoding.
func (c *JournalCursor) NextFrame() (JournalRecord, []byte, error) {
	return c.next()
}

func (c *JournalCursor) next() (JournalRecord, []byte, error) {
	if c.f == nil {
		f, err := os.Open(c.path)
		if err != nil {
			if os.IsNotExist(err) {
				return JournalRecord{}, nil, io.EOF
			}
			return JournalRecord{}, nil, fmt.Errorf("journal: %w", err)
		}
		c.f = f
	}
	if !c.hdr {
		hdr := make([]byte, len(journalMagic)+2)
		if _, err := c.f.ReadAt(hdr, 0); err != nil {
			// Too short to hold a header yet: an append may be in flight.
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return JournalRecord{}, nil, io.EOF
			}
			return JournalRecord{}, nil, fmt.Errorf("journal: %w", err)
		}
		if string(hdr[:len(journalMagic)]) != string(journalMagic[:]) {
			return JournalRecord{}, nil, fmt.Errorf("journal: bad magic %q (not a journal file)", hdr[:len(journalMagic)])
		}
		if v := binary.LittleEndian.Uint16(hdr[len(journalMagic):]); v != journalVersion {
			return JournalRecord{}, nil, fmt.Errorf("journal: unsupported version %d (this build reads version %d)", v, journalVersion)
		}
		c.hdr = true
		c.off = int64(len(journalMagic) + 2)
	}
	var lenBuf [4]byte
	if _, err := c.f.ReadAt(lenBuf[:], c.off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return JournalRecord{}, nil, io.EOF
		}
		return JournalRecord{}, nil, fmt.Errorf("journal: %w", err)
	}
	plen := binary.LittleEndian.Uint32(lenBuf[:])
	if plen > maxJournalFrame {
		// Garbage in the length slot: a crash tail, not a frame to wait for.
		return JournalRecord{}, nil, io.EOF
	}
	frame := make([]byte, 4+int(plen)+4)
	if _, err := c.f.ReadAt(frame, c.off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return JournalRecord{}, nil, io.EOF // partial frame: append in flight or crash tail
		}
		return JournalRecord{}, nil, fmt.Errorf("journal: %w", err)
	}
	payload := frame[4 : 4+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4+plen:]) {
		return JournalRecord{}, nil, io.EOF // torn write: retryable, do not advance
	}
	rec, err := decodeJournalPayload(payload)
	if err != nil {
		// Checksummed clean but malformed: corruption, not a tail.
		return JournalRecord{}, nil, fmt.Errorf("journal: record at offset %d: %w", c.off, err)
	}
	c.off += int64(len(frame))
	return rec, frame, nil
}

// FrameReader decodes a stream of journal frames (no file header) from an
// io.Reader — the receive side of the journal-shipping endpoint. Unlike the
// file cursor, a short read mid-frame is io.ErrUnexpectedEOF: on a stream
// there is no "wait for the writer", a truncated frame means the connection
// died and the caller should reconnect from its last applied sequence.
type FrameReader struct {
	r *bufio.Reader
}

// NewFrameReader wraps r for frame-at-a-time decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Next returns the next record. io.EOF marks a clean end between frames;
// io.ErrUnexpectedEOF a mid-frame truncation; other errors corruption.
func (fr *FrameReader) Next() (JournalRecord, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(fr.r, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return JournalRecord{}, io.ErrUnexpectedEOF
		}
		return JournalRecord{}, err // io.EOF: clean frame boundary
	}
	plen := binary.LittleEndian.Uint32(lenBuf[:])
	if plen > maxJournalFrame {
		return JournalRecord{}, fmt.Errorf("journal: frame payload %d exceeds limit", plen)
	}
	body := make([]byte, int(plen)+4)
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return JournalRecord{}, io.ErrUnexpectedEOF
	}
	payload := body[:plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(body[plen:]) {
		return JournalRecord{}, fmt.Errorf("journal: stream frame checksum mismatch")
	}
	rec, err := decodeJournalPayload(payload)
	if err != nil {
		return JournalRecord{}, fmt.Errorf("journal: stream frame: %w", err)
	}
	return rec, nil
}
