//go:build !race

package snapshot

const raceEnabled = false
