// Package snapshot persists a dataset — an attributed graph together with
// its precomputed indexes — as one versioned, checksummed binary file, so a
// server restart costs a sequential read instead of re-parsing text and
// re-running core/truss/CL-tree construction ("the index cost is paid once,
// offline", as the ACQ line of work prescribes for the indexing module of
// Figure 3).
//
// A snapshot always carries the graph (CSR offsets and adjacency, keyword
// arenas, vocabulary, display names) and optionally carries any subset of
// the three indexes: core numbers, the CL-tree in its arena form
// (cltree.Flat, inverted lists included), and the truss decomposition. All
// payloads are length-prefixed contiguous arrays, so loading is bulk slice
// reads plus pointer stitching — no per-element structure decode, no
// re-sorting, no hash-map rebuilds beyond the vocabulary, name, and
// edge-id maps that Go cannot memory-map.
//
// Files end in a CRC-32C trailer covering every preceding byte; truncation,
// bit rot, a foreign file, or an unsupported version all surface as clean
// errors from Read, never panics.
package snapshot

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"cexplorer/internal/cltree"
	"cexplorer/internal/graph"
	"cexplorer/internal/ktruss"
	"cexplorer/internal/par"
)

// FileExt is the conventional extension for snapshot files; the server's
// catalog scans its data directory for it.
const FileExt = ".cxsnap"

// Snapshot bundles everything one dataset persists. Graph is mandatory;
// Core, Tree, and Truss may be nil (the loader falls back to building them
// lazily, exactly as an unindexed upload would).
type Snapshot struct {
	Name  string
	Graph *graph.Graph
	Core  []int32
	Tree  *cltree.Tree
	Truss *ktruss.Decomposition

	// Version is the dataset's mutation-version counter (how many mutation
	// batches its lineage has absorbed). A warm restart compares it against
	// the mutation journal to replay only the tail the snapshot predates.
	// Files written before the dynamic-graph subsystem carry no version
	// section and load as version 0.
	Version uint64

	// Created is stamped by Write and restored by Read.
	Created time.Time
	// Bytes is the encoded file size, set by Read/ReadFile.
	Bytes int64
}

const (
	flagNamed = 1 << iota
	flagCore
	flagTree
	flagTruss
)

// Write serializes the snapshot and returns the number of bytes written.
//
// Section payloads are independent, so each section (header + payload) is
// encoded into its own buffer across par.Workers() workers and the buffers
// are then stitched through the checksum in file order — the bytes, and the
// trailing CRC, are identical to a serial write. The encode now buffers the
// whole file in memory (roughly the encoded size) instead of streaming
// through a fixed scratch; snapshots are bulk arrays, so that is the same
// order of memory the dataset itself occupies.
func Write(w io.Writer, s *Snapshot) (int64, error) {
	if s.Graph == nil {
		return 0, fmt.Errorf("snapshot: nil graph")
	}
	raw := s.Graph.Raw()

	flags := uint64(0)
	if len(raw.Names) > 0 {
		flags |= flagNamed
	}
	if s.Core != nil {
		flags |= flagCore
	}
	if s.Tree != nil {
		flags |= flagTree
	}
	if s.Truss != nil {
		flags |= flagTruss
	}
	created := s.Created
	if created.IsZero() {
		created = time.Now()
	}

	// One encoder per section, in file order.
	var secs []func(b *wbuf)
	secs = append(secs, func(b *wbuf) { // meta
		metaLen := uint64(4+len(s.Name)) + 8 + 8 + 8 + 8 + 8
		b.sectionHeader(secMeta, metaLen)
		b.u32(uint32(len(s.Name)))
		b.write([]byte(s.Name))
		b.u64(uint64(s.Graph.N()))
		b.u64(uint64(s.Graph.M()))
		b.u64(uint64(s.Graph.Vocab().Len()))
		b.u64(uint64(created.Unix()))
		b.u64(flags)
	})
	// version counter (omitted at zero, keeping pristine-dataset files
	// byte-identical with pre-dynamic writers)
	if s.Version > 0 {
		secs = append(secs, func(b *wbuf) {
			b.sectionHeader(secVersion, 8)
			b.u64(s.Version)
		})
	}
	// graph
	secs = append(secs,
		func(b *wbuf) {
			b.sectionHeader(secOffsets, i64sLen(len(raw.Offsets)))
			b.i64s(raw.Offsets)
		},
		func(b *wbuf) {
			b.sectionHeader(secAdj, i32sLen(len(raw.Adj)))
			b.i32s(raw.Adj)
		},
		func(b *wbuf) {
			b.sectionHeader(secKwOff, i32sLen(len(raw.KwOffsets)))
			b.i32s(raw.KwOffsets)
		},
		func(b *wbuf) {
			b.sectionHeader(secKwData, i32sLen(len(raw.KwData)))
			b.i32s(raw.KwData)
		},
		func(b *wbuf) {
			vocabLen, err := stringsLen(raw.Words)
			if err != nil {
				b.err = err
				return
			}
			b.sectionHeader(secVocab, vocabLen)
			b.strings(raw.Words)
		},
	)
	if len(raw.Names) > 0 {
		secs = append(secs, func(b *wbuf) {
			namesLen, err := stringsLen(raw.Names)
			if err != nil {
				b.err = err
				return
			}
			b.sectionHeader(secNames, namesLen)
			b.strings(raw.Names)
		})
	}
	// indexes
	if s.Core != nil {
		secs = append(secs, func(b *wbuf) {
			b.sectionHeader(secCore, i32sLen(len(s.Core)))
			b.i32s(s.Core)
		})
	}
	if s.Tree != nil {
		secs = append(secs, func(b *wbuf) {
			f := s.Tree.Flatten()
			payload := i32sLen(len(f.Cores)) + i32sLen(len(f.Parents)) +
				i32sLen(len(f.VertOff)) + i32sLen(len(f.Verts)) +
				i32sLen(len(f.InvOff)) + i32sLen(len(f.InvKw)) + i32sLen(len(f.InvV))
			b.sectionHeader(secTree, payload)
			b.i32s(f.Cores)
			b.i32s(f.Parents)
			b.i32s(f.VertOff)
			b.i32s(f.Verts)
			b.i32s(f.InvOff)
			b.i32s(f.InvKw)
			b.i32s(f.InvV)
		})
	}
	if s.Truss != nil {
		secs = append(secs, func(b *wbuf) {
			edges, truss := s.Truss.Parts()
			flat := make([]int32, 0, 2*len(edges))
			for _, e := range edges {
				flat = append(flat, e[0], e[1])
			}
			b.sectionHeader(secTruss, i32sLen(len(flat))+i32sLen(len(truss)))
			b.i32s(flat)
			b.i32s(truss)
		})
	}

	b := newWbuf(w)
	b.write(magic[:])
	b.u16(version)
	if par.Workers() == 1 {
		// Serial fast path: stream every section straight through the
		// checksummed writer — no buffer materialization, the original
		// single-pass encode.
		for _, enc := range secs {
			enc(b)
		}
	} else {
		bufs := make([]bytes.Buffer, len(secs))
		errs := make([]error, len(secs))
		par.Each(len(secs), 0, func(i int) {
			mb := newMemWbuf(&bufs[i])
			secs[i](mb)
			errs[i] = mb.err
		})
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		// Stitch the section buffers through the checksum in file order.
		for i := range bufs {
			b.write(bufs[i].Bytes())
		}
	}
	b.u32(b.cw.crc)
	return b.cw.n, b.err
}

// openEnvelope verifies the file envelope shared by Read and Inspect —
// length, magic, CRC-32C trailer, version — and returns a cursor positioned
// at the first section header.
func openEnvelope(data []byte) (*rbuf, error) {
	if len(data) < len(magic)+2+trailerLen {
		return nil, fmt.Errorf("snapshot: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a snapshot file)", data[:len(magic)])
	}
	body := data[:len(data)-trailerLen]
	want := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (file %08x, computed %08x): truncated or corrupt", want, got)
	}
	cur := &rbuf{b: body, off: len(magic)}
	if v := cur.u16(); cur.err == nil && v != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (this build reads version %d)", v, version)
	}
	return cur, cur.err
}

// nextSection reads one section header and returns its id and a cursor over
// its payload; done is true at end of input.
func nextSection(cur *rbuf) (id uint32, sec *rbuf, done bool, err error) {
	if cur.remaining() == 0 {
		return 0, nil, true, nil
	}
	id = cur.u32()
	payloadLen := cur.u64()
	if cur.err != nil {
		return 0, nil, false, cur.err
	}
	if payloadLen > uint64(cur.remaining()) {
		return 0, nil, false, fmt.Errorf("snapshot: section %s declares %d bytes but %d remain",
			sectionName(id), payloadLen, cur.remaining())
	}
	return id, &rbuf{b: cur.bytes(int(payloadLen))}, false, nil
}

// Read deserializes a snapshot. The stream is read fully, checksum-verified
// end to end, and then decoded section by section; any structural damage
// yields an error, never a panic. Unknown sections are skipped.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(data)
}

// Decode deserializes a snapshot from bytes already in memory (what Read
// and ReadFile call after slurping their source; callers that already hold
// the file contents can use it directly and skip a copy).
//
// The section framing is walked serially (a few header reads), then the
// payloads — independent bulk arrays — decode across par.Workers() workers,
// with a duplicated section id resolved to its last occurrence exactly as
// the serial decoder's switch did.
func Decode(data []byte) (*Snapshot, error) {
	cur, err := openEnvelope(data)
	if err != nil {
		return nil, err
	}

	type section struct {
		id      uint32
		payload []byte
	}
	var found []section
	for {
		id, sec, done, err := nextSection(cur)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if len(found) == 0 && id != secMeta {
			return nil, fmt.Errorf("snapshot: first section is %s, want meta", sectionName(id))
		}
		found = append(found, section{id, sec.b})
	}
	if len(found) == 0 {
		return nil, fmt.Errorf("snapshot: missing meta section")
	}
	// Last occurrence of an id wins; unknown ids are skipped (forward
	// compatibility).
	latest := make(map[uint32]int, len(found))
	for i, sec := range found {
		latest[sec.id] = i
	}
	var todo []section
	for i, sec := range found {
		if latest[sec.id] == i {
			todo = append(todo, sec)
		}
	}

	s := &Snapshot{Bytes: int64(len(data))}
	var (
		raw      graph.Raw
		flags    uint64
		treeFlat *cltree.Flat
		trussRaw [2][]int32 // flat edges, trussness
		sawTruss bool
	)
	errs := make([]error, len(todo))
	par.Each(len(todo), 0, func(i int) {
		sec := &rbuf{b: todo[i].payload}
		switch id := todo[i].id; id {
		case secMeta:
			nameLen := int(sec.u32())
			s.Name = string(sec.bytes(nameLen))
			sec.u64() // n — informational; authoritative counts come from the arrays
			sec.u64() // m
			sec.u64() // vocab
			s.Created = time.Unix(int64(sec.u64()), 0)
			flags = sec.u64()
		case secOffsets:
			raw.Offsets = sec.i64s()
		case secAdj:
			raw.Adj = sec.i32s()
		case secKwOff:
			raw.KwOffsets = sec.i32s()
		case secKwData:
			raw.KwData = sec.i32s()
		case secVocab:
			raw.Words = sec.strings()
		case secNames:
			raw.Names = sec.strings()
		case secCore:
			s.Core = sec.i32s()
		case secTree:
			treeFlat = &cltree.Flat{
				Cores:   sec.i32s(),
				Parents: sec.i32s(),
				VertOff: sec.i32s(),
				Verts:   sec.i32s(),
				InvOff:  sec.i32s(),
				InvKw:   sec.i32s(),
				InvV:    sec.i32s(),
			}
		case secTruss:
			trussRaw[0] = sec.i32s()
			trussRaw[1] = sec.i32s()
			sawTruss = true
		case secVersion:
			s.Version = sec.u64()
		}
		if sec.err != nil {
			errs[i] = fmt.Errorf("snapshot: section %s: %w", sectionName(todo[i].id), sec.err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	g, err := graph.FromRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s.Graph = g
	if flags&flagCore != 0 && len(s.Core) != g.N() {
		return nil, fmt.Errorf("snapshot: %d core numbers for n=%d", len(s.Core), g.N())
	}
	if flags&flagTree != 0 {
		if treeFlat == nil {
			return nil, fmt.Errorf("snapshot: meta declares a CL-tree but no cltree section present")
		}
		t, err := cltree.FromFlat(g, *treeFlat)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		s.Tree = t
	}
	if flags&flagTruss != 0 {
		if !sawTruss {
			return nil, fmt.Errorf("snapshot: meta declares a truss decomposition but no ktruss section present")
		}
		flat := trussRaw[0]
		if len(flat) != 2*len(trussRaw[1]) {
			return nil, fmt.Errorf("snapshot: truss edge table length %d does not match %d trussness values",
				len(flat), len(trussRaw[1]))
		}
		edges := make([][2]int32, len(trussRaw[1]))
		for i := range edges {
			edges[i] = [2]int32{flat[2*i], flat[2*i+1]}
		}
		d, err := ktruss.FromParts(g, edges, trussRaw[1])
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		s.Truss = d
	}
	return s, nil
}

// WriteFile atomically persists the snapshot at path: it writes to a
// temporary file in the same directory, fsyncs, and renames into place, so
// a crash mid-write can never leave a half-written catalog entry. The
// returned size is the encoded byte count.
func WriteFile(path string, s *Snapshot) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	n, err := Write(bw, s)
	if err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return n, fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return n, fmt.Errorf("snapshot: %w", err)
	}
	name := tmp.Name()
	tmp = nil // success path: disable the cleanup deferral's Close
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return n, fmt.Errorf("snapshot: %w", err)
	}
	return n, nil
}

// ReadFile loads the snapshot at path. The file is slurped in one
// stat-sized read (this is the warm-start hot path; no intermediate
// buffering layers).
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// SectionInfo describes one section for Inspect.
type SectionInfo struct {
	ID    uint32
	Name  string
	Bytes int64
}

// Info is the metadata Inspect reports without materializing the dataset.
type Info struct {
	Version uint16
	// DatasetVersion is the mutation-version counter (0 for files written
	// before the dynamic-graph subsystem).
	DatasetVersion uint64
	Name           string
	Vertices       int64
	Edges          int64
	Keywords       int64
	Named          bool
	HasCore        bool
	HasTree        bool
	HasTruss       bool
	Created        time.Time
	Sections       []SectionInfo
	Bytes          int64
}

// Inspect verifies the checksum and walks the section framing, decoding
// only the meta section. It is the `cexplorer snapshot inspect` backend.
func Inspect(r io.Reader) (*Info, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	cur, err := openEnvelope(data)
	if err != nil {
		return nil, err
	}
	info := &Info{Version: version, Bytes: int64(len(data))}
	for {
		id, sec, done, err := nextSection(cur)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		info.Sections = append(info.Sections, SectionInfo{
			ID: id, Name: sectionName(id), Bytes: sectionHdrLen + int64(len(sec.b)),
		})
		if id == secVersion {
			info.DatasetVersion = sec.u64()
		}
		if id == secMeta {
			nameLen := int(sec.u32())
			info.Name = string(sec.bytes(nameLen))
			info.Vertices = int64(sec.u64())
			info.Edges = int64(sec.u64())
			info.Keywords = int64(sec.u64())
			info.Created = time.Unix(int64(sec.u64()), 0)
			flags := sec.u64()
			if sec.err != nil {
				return nil, fmt.Errorf("snapshot: meta section: %w", sec.err)
			}
			info.Named = flags&flagNamed != 0
			info.HasCore = flags&flagCore != 0
			info.HasTree = flags&flagTree != 0
			info.HasTruss = flags&flagTruss != 0
		}
	}
	if cur.err != nil {
		return nil, cur.err
	}
	return info, nil
}
