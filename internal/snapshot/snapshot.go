// Package snapshot persists a dataset — an attributed graph together with
// its precomputed indexes — as one versioned, checksummed binary file, so a
// server restart costs a sequential read instead of re-parsing text and
// re-running core/truss/CL-tree construction ("the index cost is paid once,
// offline", as the ACQ line of work prescribes for the indexing module of
// Figure 3).
//
// A snapshot always carries the graph (CSR offsets and adjacency, keyword
// arenas, vocabulary, display names) and optionally carries any subset of
// the three indexes: core numbers, the CL-tree in its arena form
// (cltree.Flat, inverted lists included), and the truss decomposition. All
// payloads are length-prefixed contiguous arrays, so loading is bulk slice
// reads plus pointer stitching — no per-element structure decode, no
// re-sorting, no hash-map rebuilds beyond the vocabulary, name, and
// edge-id maps that Go cannot memory-map.
//
// Files end in a CRC-32C trailer covering every preceding byte; truncation,
// bit rot, a foreign file, or an unsupported version all surface as clean
// errors from Read, never panics.
//
// # Zero-copy (format v3)
//
// Format v3 makes the on-disk layout the in-memory layout: section headers
// are 16 bytes, every payload is padded so it starts (and the next header
// stays) 8-byte aligned, and all numbers are little-endian. On a
// little-endian Unix host, OpenFile can therefore mmap the file and
// DecodeView stitches the runtime structures directly over the mapping —
// bulk arrays (CSR graph, keyword arenas, tree arenas, truss table) and
// even string contents (names, vocabulary) are views of the mapped pages,
// so opening costs O(index stitch) allocations instead of O(bytes) copies.
// View-decoded graphs are marked borrowed (graph.Raw.Borrowed); the
// refcounted Mapping returned by OpenFile must outlive every reader and is
// released by the owner's Close (callers pin it across reads).
//
// Eligibility is a property, not an error: DecodeView fails with the
// sticky ErrNotZeroCopy on v1/v2 files, big-endian hosts, or misaligned
// sections, and OpenAuto falls back to copy-decoding the same bytes.
// Corruption, by contrast, fails the open in every mode. The copy path
// (Read/Decode, and io.Reader sources generally) remains fully supported;
// legacy v2 files keep working through it forever, and WriteFormat still
// writes them.
package snapshot

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"cexplorer/internal/cltree"
	"cexplorer/internal/graph"
	"cexplorer/internal/ktruss"
	"cexplorer/internal/par"
)

// FileExt is the conventional extension for snapshot files; the server's
// catalog scans its data directory for it.
const FileExt = ".cxsnap"

// Snapshot bundles everything one dataset persists. Graph is mandatory;
// Core, Tree, and Truss may be nil (the loader falls back to building them
// lazily, exactly as an unindexed upload would).
type Snapshot struct {
	Name  string
	Graph *graph.Graph
	Core  []int32
	Tree  *cltree.Tree
	Truss *ktruss.Decomposition

	// Version is the dataset's mutation-version counter (how many mutation
	// batches its lineage has absorbed). A warm restart compares it against
	// the mutation journal to replay only the tail the snapshot predates.
	// Files written before the dynamic-graph subsystem carry no version
	// section and load as version 0.
	Version uint64

	// Created is stamped by Write and restored by Read.
	Created time.Time
	// Bytes is the encoded file size, set by Read/ReadFile.
	Bytes int64

	// Format is the on-disk version the snapshot was decoded from (set by
	// Decode/DecodeView; zero for snapshots assembled in memory).
	Format uint16
	// ZeroCopy reports that the snapshot was view-decoded: its bulk arrays
	// and string contents borrow the decode input and are valid only while
	// that backing memory is.
	ZeroCopy bool
}

const (
	flagNamed = 1 << iota
	flagCore
	flagTree
	flagTruss
)

// Write serializes the snapshot in the default (v3, zero-copy-eligible)
// format and returns the number of bytes written.
//
// Section payloads are independent, so each section (header + payload) is
// encoded into its own buffer across par.Workers() workers and the buffers
// are then stitched through the checksum in file order — the bytes, and the
// trailing CRC, are identical to a serial write. The encode now buffers the
// whole file in memory (roughly the encoded size) instead of streaming
// through a fixed scratch; snapshots are bulk arrays, so that is the same
// order of memory the dataset itself occupies.
func Write(w io.Writer, s *Snapshot) (int64, error) {
	return WriteFormat(w, s, DefaultFormat)
}

// WriteFormat serializes the snapshot in an explicit format version
// (FormatV2 for the legacy unaligned layout, FormatV3 for the aligned
// zero-copy layout).
func WriteFormat(w io.Writer, s *Snapshot, format uint16) (int64, error) {
	if format != FormatV2 && format != FormatV3 {
		return 0, fmt.Errorf("snapshot: unsupported write format %d (want %d or %d)", format, FormatV2, FormatV3)
	}
	if s.Graph == nil {
		return 0, fmt.Errorf("snapshot: nil graph")
	}
	raw := s.Graph.Raw()

	flags := uint64(0)
	if len(raw.Names) > 0 {
		flags |= flagNamed
	}
	if s.Core != nil {
		flags |= flagCore
	}
	if s.Tree != nil {
		flags |= flagTree
	}
	if s.Truss != nil {
		flags |= flagTruss
	}
	created := s.Created
	if created.IsZero() {
		created = time.Now()
	}

	// One encoder per section, in file order.
	var secs []func(b *wbuf)
	secs = append(secs, func(b *wbuf) { // meta
		metaLen := uint64(4+len(s.Name)) + 8 + 8 + 8 + 8 + 8
		b.sectionHeader(secMeta, metaLen)
		b.u32(uint32(len(s.Name)))
		b.write([]byte(s.Name))
		b.u64(uint64(s.Graph.N()))
		b.u64(uint64(s.Graph.M()))
		b.u64(uint64(s.Graph.Vocab().Len()))
		b.u64(uint64(created.Unix()))
		b.u64(flags)
	})
	// version counter (omitted at zero, keeping pristine-dataset files
	// byte-identical with pre-dynamic writers)
	if s.Version > 0 {
		secs = append(secs, func(b *wbuf) {
			b.sectionHeader(secVersion, 8)
			b.u64(s.Version)
		})
	}
	// graph
	secs = append(secs,
		func(b *wbuf) {
			b.sectionHeader(secOffsets, i64sLen(len(raw.Offsets)))
			b.i64s(raw.Offsets)
		},
		func(b *wbuf) {
			b.sectionHeader(secAdj, i32sLen(len(raw.Adj)))
			b.i32s(raw.Adj)
		},
		func(b *wbuf) {
			b.sectionHeader(secKwOff, i32sLen(len(raw.KwOffsets)))
			b.i32s(raw.KwOffsets)
		},
		func(b *wbuf) {
			b.sectionHeader(secKwData, i32sLen(len(raw.KwData)))
			b.i32s(raw.KwData)
		},
		func(b *wbuf) {
			vocabLen, err := stringsLen(raw.Words)
			if err != nil {
				b.err = err
				return
			}
			b.sectionHeader(secVocab, vocabLen)
			b.strings(raw.Words)
		},
	)
	if len(raw.Names) > 0 {
		secs = append(secs, func(b *wbuf) {
			namesLen, err := stringsLen(raw.Names)
			if err != nil {
				b.err = err
				return
			}
			b.sectionHeader(secNames, namesLen)
			b.strings(raw.Names)
		})
	}
	// indexes
	if s.Core != nil {
		secs = append(secs, func(b *wbuf) {
			b.sectionHeader(secCore, i32sLen(len(s.Core)))
			b.i32s(s.Core)
		})
	}
	if s.Tree != nil {
		secs = append(secs, func(b *wbuf) {
			f := s.Tree.Flatten()
			payload := i32sLen(len(f.Cores)) + i32sLen(len(f.Parents)) +
				i32sLen(len(f.VertOff)) + i32sLen(len(f.Verts)) +
				i32sLen(len(f.InvOff)) + i32sLen(len(f.InvKw)) + i32sLen(len(f.InvV))
			b.sectionHeader(secTree, payload)
			b.i32s(f.Cores)
			b.i32s(f.Parents)
			b.i32s(f.VertOff)
			b.i32s(f.Verts)
			b.i32s(f.InvOff)
			b.i32s(f.InvKw)
			b.i32s(f.InvV)
		})
	}
	if s.Truss != nil {
		secs = append(secs, func(b *wbuf) {
			edges, truss := s.Truss.Parts()
			flat := make([]int32, 0, 2*len(edges))
			for _, e := range edges {
				flat = append(flat, e[0], e[1])
			}
			b.sectionHeader(secTruss, i32sLen(len(flat))+i32sLen(len(truss)))
			b.i32s(flat)
			b.i32s(truss)
		})
	}

	b := newWbuf(w, aligned(format))
	b.write(magic[:])
	b.u16(format)
	if par.Workers() == 1 {
		// Serial fast path: stream every section straight through the
		// checksummed writer — no buffer materialization, the original
		// single-pass encode.
		for _, enc := range secs {
			enc(b)
			b.endSection()
		}
	} else {
		bufs := make([]bytes.Buffer, len(secs))
		errs := make([]error, len(secs))
		par.Each(len(secs), 0, func(i int) {
			mb := newMemWbuf(&bufs[i], aligned(format))
			secs[i](mb)
			mb.endSection()
			errs[i] = mb.err
		})
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		// Stitch the section buffers through the checksum in file order.
		for i := range bufs {
			b.write(bufs[i].Bytes())
		}
	}
	b.u32(b.cw.crc)
	return b.cw.n, b.err
}

// openEnvelope verifies the file envelope shared by Read and Inspect —
// length, magic, CRC-32C trailer, version — and returns a cursor positioned
// at the first section header plus the file's format version.
func openEnvelope(data []byte) (*rbuf, uint16, error) {
	if len(data) < len(magic)+2+trailerLen {
		return nil, 0, fmt.Errorf("snapshot: file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, 0, fmt.Errorf("snapshot: bad magic %q (not a snapshot file)", data[:len(magic)])
	}
	body := data[:len(data)-trailerLen]
	want := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, 0, fmt.Errorf("snapshot: checksum mismatch (file %08x, computed %08x): truncated or corrupt", want, got)
	}
	cur := &rbuf{b: body, off: len(magic)}
	ver := cur.u16()
	if cur.err == nil && (ver < 1 || ver > maxVersion) {
		return nil, 0, fmt.Errorf("snapshot: unsupported version %d (this build reads versions 1–%d)", ver, maxVersion)
	}
	return cur, ver, cur.err
}

// nextSection reads one section header under the file's format version and
// returns its id, a cursor over its payload, and the payload's absolute
// file offset; done is true at end of input. In the v3 layout it also
// consumes the reserved header word and the trailing payload padding.
func nextSection(cur *rbuf, ver uint16) (id uint32, sec *rbuf, off int64, done bool, err error) {
	if cur.remaining() == 0 {
		return 0, nil, 0, true, nil
	}
	id = cur.u32()
	if aligned(ver) {
		if reserved := cur.u32(); cur.err == nil && reserved != 0 {
			return 0, nil, 0, false, fmt.Errorf("snapshot: section %s: nonzero reserved header word", sectionName(id))
		}
	}
	payloadLen := cur.u64()
	if cur.err != nil {
		return 0, nil, 0, false, cur.err
	}
	if payloadLen > uint64(cur.remaining()) {
		return 0, nil, 0, false, fmt.Errorf("snapshot: section %s declares %d bytes but %d remain",
			sectionName(id), payloadLen, cur.remaining())
	}
	off = int64(cur.off)
	sec = &rbuf{b: cur.bytes(int(payloadLen))}
	if aligned(ver) {
		cur.bytes(sectionPad(payloadLen)) // every v3 section is padded, the last included
	}
	return id, sec, off, false, cur.err
}

// Read deserializes a snapshot. The stream is read fully, checksum-verified
// end to end, and then decoded section by section; any structural damage
// yields an error, never a panic. Unknown sections are skipped.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(data)
}

// Decode deserializes a snapshot from bytes already in memory (what Read
// and ReadFile call after slurping their source; callers that already hold
// the file contents can use it directly and skip a copy).
//
// The section framing is walked serially (a few header reads), then the
// payloads — independent bulk arrays — decode across par.Workers() workers,
// with a duplicated section id resolved to its last occurrence exactly as
// the serial decoder's switch did.
func Decode(data []byte) (*Snapshot, error) {
	return decode(data, false)
}

// DecodeView deserializes a v3 snapshot with its bulk arrays and string
// contents borrowed from data (see view.go for the exact contract): the
// result is valid only while data is. It fails with ErrNotZeroCopy — the
// caller's cue to fall back to Decode — when the file predates v3, the
// host is big-endian, or a payload is misaligned; any other error means
// the file is damaged for both paths.
func DecodeView(data []byte) (*Snapshot, error) {
	return decode(data, true)
}

func decode(data []byte, view bool) (*Snapshot, error) {
	cur, ver, err := openEnvelope(data)
	if err != nil {
		return nil, err
	}
	if view {
		if !aligned(ver) {
			return nil, fmt.Errorf("%w: file is v%d (zero-copy needs v%d)", ErrNotZeroCopy, ver, FormatV3)
		}
		if !hostLittleEndian {
			return nil, fmt.Errorf("%w: big-endian host", ErrNotZeroCopy)
		}
	}

	type section struct {
		id      uint32
		payload []byte
	}
	var found []section
	for {
		id, sec, _, done, err := nextSection(cur, ver)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if len(found) == 0 && id != secMeta {
			return nil, fmt.Errorf("snapshot: first section is %s, want meta", sectionName(id))
		}
		found = append(found, section{id, sec.b})
	}
	if len(found) == 0 {
		return nil, fmt.Errorf("snapshot: missing meta section")
	}
	// Last occurrence of an id wins; unknown ids are skipped (forward
	// compatibility).
	latest := make(map[uint32]int, len(found))
	for i, sec := range found {
		latest[sec.id] = i
	}
	var todo []section
	for i, sec := range found {
		if latest[sec.id] == i {
			todo = append(todo, sec)
		}
	}

	s := &Snapshot{Bytes: int64(len(data)), Format: ver, ZeroCopy: view}
	// Bulk-array primitives dispatch on the decode mode: the copy path heap-
	// allocates, the view path pointer-stitches over data (see view.go).
	i32s := (*rbuf).i32s
	i64s := (*rbuf).i64s
	strs := (*rbuf).strings
	if view {
		i32s = (*rbuf).viewI32s
		i64s = (*rbuf).viewI64s
		strs = (*rbuf).viewStrings
	}
	var (
		raw      graph.Raw
		flags    uint64
		treeFlat *cltree.Flat
		trussRaw [2][]int32 // flat edges, trussness
		sawTruss bool
	)
	errs := make([]error, len(todo))
	par.Each(len(todo), 0, func(i int) {
		sec := &rbuf{b: todo[i].payload}
		switch id := todo[i].id; id {
		case secMeta:
			nameLen := int(sec.u32())
			s.Name = string(sec.bytes(nameLen))
			sec.u64() // n — informational; authoritative counts come from the arrays
			sec.u64() // m
			sec.u64() // vocab
			s.Created = time.Unix(int64(sec.u64()), 0)
			flags = sec.u64()
		case secOffsets:
			raw.Offsets = i64s(sec)
		case secAdj:
			raw.Adj = i32s(sec)
		case secKwOff:
			raw.KwOffsets = i32s(sec)
		case secKwData:
			raw.KwData = i32s(sec)
		case secVocab:
			raw.Words = strs(sec)
		case secNames:
			raw.Names = strs(sec)
		case secCore:
			s.Core = i32s(sec)
		case secTree:
			treeFlat = &cltree.Flat{
				Cores:   i32s(sec),
				Parents: i32s(sec),
				VertOff: i32s(sec),
				Verts:   i32s(sec),
				InvOff:  i32s(sec),
				InvKw:   i32s(sec),
				InvV:    i32s(sec),
			}
		case secTruss:
			trussRaw[0] = i32s(sec)
			trussRaw[1] = i32s(sec)
			sawTruss = true
		case secVersion:
			s.Version = sec.u64()
		}
		if sec.err != nil {
			errs[i] = fmt.Errorf("snapshot: section %s: %w", sectionName(todo[i].id), sec.err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	raw.Borrowed = view
	g, err := graph.FromRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s.Graph = g
	if flags&flagCore != 0 && len(s.Core) != g.N() {
		return nil, fmt.Errorf("snapshot: %d core numbers for n=%d", len(s.Core), g.N())
	}
	if flags&flagTree != 0 {
		if treeFlat == nil {
			return nil, fmt.Errorf("snapshot: meta declares a CL-tree but no cltree section present")
		}
		t, err := cltree.FromFlat(g, *treeFlat)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		s.Tree = t
	}
	if flags&flagTruss != 0 {
		if !sawTruss {
			return nil, fmt.Errorf("snapshot: meta declares a truss decomposition but no ktruss section present")
		}
		flat := trussRaw[0]
		if len(flat) != 2*len(trussRaw[1]) {
			return nil, fmt.Errorf("snapshot: truss edge table length %d does not match %d trussness values",
				len(flat), len(trussRaw[1]))
		}
		var edges [][2]int32
		if view {
			// The flat table is already (u,v) pairs in memory; reinterpret
			// it in place instead of building a pair-array copy.
			edges, err = viewPairs(flat)
			if err != nil {
				return nil, err
			}
		} else {
			edges = make([][2]int32, len(trussRaw[1]))
			for i := range edges {
				edges[i] = [2]int32{flat[2*i], flat[2*i+1]}
			}
		}
		d, err := ktruss.FromParts(g, edges, trussRaw[1])
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		s.Truss = d
	}
	return s, nil
}

// WriteFile atomically persists the snapshot at path: it writes to a
// temporary file in the same directory, fsyncs, renames into place, and
// fsyncs the directory, so a crash at any point can neither leave a
// half-written catalog entry nor lose the rename itself. The returned size
// is the encoded byte count.
func WriteFile(path string, s *Snapshot) (int64, error) {
	return WriteFileFormat(path, s, DefaultFormat)
}

// WriteFileFormat is WriteFile with an explicit format version.
func WriteFileFormat(path string, s *Snapshot, format uint16) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	n, err := WriteFormat(bw, s, format)
	if err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return n, fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return n, fmt.Errorf("snapshot: %w", err)
	}
	name := tmp.Name()
	tmp = nil // success path: disable the cleanup deferral's Close
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return n, fmt.Errorf("snapshot: %w", err)
	}
	// The rename is only durable once the directory entry is on disk; fsync
	// the directory so a crash just after persist cannot resurrect the old
	// file (or, for a first write, lose the catalog entry entirely).
	// Filesystems that refuse directory fsync (some network mounts) keep
	// rename atomicity, so that failure is not worth failing the persist.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return n, nil
}

// ReadFile loads the snapshot at path. The file is slurped in one
// stat-sized read (this is the warm-start hot path; no intermediate
// buffering layers).
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// SectionInfo describes one section for Inspect.
type SectionInfo struct {
	ID   uint32
	Name string
	// Bytes is the section's on-disk footprint (header + payload + any
	// padding); Offset is the payload's absolute file offset and Aligned
	// reports whether that offset sits on the zero-copy 8-byte boundary.
	Bytes   int64
	Offset  int64
	Aligned bool
}

// Info is the metadata Inspect reports without materializing the dataset.
type Info struct {
	// Version is the file's format version (1–3).
	Version uint16
	// DatasetVersion is the mutation-version counter (0 for files written
	// before the dynamic-graph subsystem).
	DatasetVersion uint64
	Name           string
	Vertices       int64
	Edges          int64
	Keywords       int64
	Named          bool
	HasCore        bool
	HasTree        bool
	HasTruss       bool
	Created        time.Time
	Sections       []SectionInfo
	Bytes          int64
	// ZeroCopy reports whether this host could open the file without
	// copying its bulk arrays (v3 layout, little-endian host, every
	// payload aligned); ZeroCopyReason says why not when it cannot.
	ZeroCopy       bool
	ZeroCopyReason string
}

// Inspect verifies the checksum and walks the section framing, decoding
// only the meta section. It is the `cexplorer snapshot inspect` backend.
func Inspect(r io.Reader) (*Info, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	cur, ver, err := openEnvelope(data)
	if err != nil {
		return nil, err
	}
	info := &Info{Version: ver, Bytes: int64(len(data))}
	hdrLen := int64(sectionHdrLen)
	if aligned(ver) {
		hdrLen = sectionHdrLenV3
	}
	allAligned := true
	for {
		id, sec, off, done, err := nextSection(cur, ver)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		secAligned := off%sectionAlign == 0
		allAligned = allAligned && secAligned
		onDisk := hdrLen + int64(len(sec.b))
		if aligned(ver) {
			onDisk += int64(sectionPad(uint64(len(sec.b))))
		}
		info.Sections = append(info.Sections, SectionInfo{
			ID: id, Name: sectionName(id), Bytes: onDisk, Offset: off, Aligned: secAligned,
		})
		if id == secVersion {
			info.DatasetVersion = sec.u64()
		}
		if id == secMeta {
			nameLen := int(sec.u32())
			info.Name = string(sec.bytes(nameLen))
			info.Vertices = int64(sec.u64())
			info.Edges = int64(sec.u64())
			info.Keywords = int64(sec.u64())
			info.Created = time.Unix(int64(sec.u64()), 0)
			flags := sec.u64()
			if sec.err != nil {
				return nil, fmt.Errorf("snapshot: meta section: %w", sec.err)
			}
			info.Named = flags&flagNamed != 0
			info.HasCore = flags&flagCore != 0
			info.HasTree = flags&flagTree != 0
			info.HasTruss = flags&flagTruss != 0
		}
	}
	if cur.err != nil {
		return nil, cur.err
	}
	switch {
	case !aligned(ver):
		info.ZeroCopyReason = fmt.Sprintf("v%d layout predates zero-copy (v%d)", ver, FormatV3)
	case !hostLittleEndian:
		info.ZeroCopyReason = "big-endian host"
	case !allAligned:
		info.ZeroCopyReason = "misaligned section payload"
	default:
		info.ZeroCopy = true
	}
	return info, nil
}
