package snapshot

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	"cexplorer/internal/cltree"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/ktruss"
)

// testGraph builds a small attributed, named graph with some structure.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.Figure5()
}

// randomAttributed builds a random graph with names and keywords, for
// shaking out round-trip fidelity beyond the worked example.
func randomAttributed(t testing.TB, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := []string{"db", "ml", "ir", "graph", "web", "hci", "sys", "pl", "net", "sec"}
	b := graph.NewBuilder(n, m)
	for v := 0; v < n; v++ {
		kws := make([]string, 0, 3)
		for _, w := range words {
			if rng.Float64() < 0.25 {
				kws = append(kws, w)
			}
		}
		b.AddVertex("author-"+string(rune('a'+v%26))+"-"+string(rune('0'+v%10)), kws...)
	}
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		b.AddEdge(u, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func fullSnapshot(t testing.TB, name string, g *graph.Graph) *Snapshot {
	t.Helper()
	tree := cltree.Build(g)
	return &Snapshot{
		Name:  name,
		Graph: g,
		Core:  kcore.Decompose(g),
		Tree:  tree,
		Truss: ktruss.Decompose(g),
	}
}

func encode(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, s)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("write reported %d bytes, buffer has %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTripFigure5(t *testing.T) {
	g := testGraph(t)
	s := fullSnapshot(t, "figure5", g)
	data := encode(t, s)

	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Name != "figure5" {
		t.Fatalf("name = %q", got.Name)
	}
	if got.Bytes != int64(len(data)) {
		t.Fatalf("bytes = %d, want %d", got.Bytes, len(data))
	}
	checkGraphEqual(t, g, got.Graph)
	if !reflect.DeepEqual(got.Core, s.Core) {
		t.Fatalf("core numbers differ")
	}
	if got.Tree == nil {
		t.Fatalf("tree missing")
	}
	if err := got.Tree.Validate(); err != nil {
		t.Fatalf("loaded tree invalid: %v", err)
	}
	checkTreeEqual(t, s.Tree, got.Tree)
	checkTrussEqual(t, g, s.Truss, got.Truss)
}

func TestRoundTripRandom(t *testing.T) {
	g := randomAttributed(t, 300, 1500, 7)
	s := fullSnapshot(t, "rand", g)
	got, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := got.Graph.Validate(); err != nil {
		t.Fatalf("loaded graph invalid: %v", err)
	}
	checkGraphEqual(t, g, got.Graph)
	if err := got.Tree.Validate(); err != nil {
		t.Fatalf("loaded tree invalid: %v", err)
	}
	checkTreeEqual(t, s.Tree, got.Tree)
	checkTrussEqual(t, g, s.Truss, got.Truss)
}

func TestRoundTripGraphOnly(t *testing.T) {
	// Indexes are optional: a graph-only snapshot loads with nil indexes.
	g := randomAttributed(t, 50, 120, 3)
	data := encode(t, &Snapshot{Name: "plain", Graph: g})
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Core != nil || got.Tree != nil || got.Truss != nil {
		t.Fatalf("graph-only snapshot decoded phantom indexes")
	}
	checkGraphEqual(t, g, got.Graph)
}

func TestRoundTripUnnamedGraph(t *testing.T) {
	// A graph without display names must not grow them through persistence.
	b := graph.NewBuilder(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	got, err := Read(bytes.NewReader(encode(t, &Snapshot{Name: "anon", Graph: g})))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Graph.Named() {
		t.Fatalf("unnamed graph came back named")
	}
	checkGraphEqual(t, g, got.Graph)
}

func TestWriteFileAtomicAndReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig5"+FileExt)
	s := fullSnapshot(t, "figure5", testGraph(t))
	n, err := WriteFile(path, s)
	if err != nil {
		t.Fatalf("write file: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if fi.Size() != n {
		t.Fatalf("file size %d, write reported %d", fi.Size(), n)
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	checkGraphEqual(t, s.Graph, got.Graph)
}

func TestCorruption(t *testing.T) {
	s := fullSnapshot(t, "figure5", testGraph(t))
	data := encode(t, s)

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 1, 5, 8, 20, len(data) / 2, len(data) - 1} {
			if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
				t.Errorf("truncation at %d bytes: want error, got nil", cut)
			}
		}
	})

	t.Run("bit flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 50; trial++ {
			bad := append([]byte(nil), data...)
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
			if _, err := Read(bytes.NewReader(bad)); err == nil {
				t.Errorf("trial %d: corrupted file read without error", trial)
			}
		}
	})

	t.Run("bad checksum message", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0xFF
		_, err := Read(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("want checksum error, got %v", err)
		}
	})

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		copy(bad, "NOTASN")
		_, err := Read(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want magic error, got %v", err)
		}
	})

	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[6] = 0xFE // version lo byte
		bad[7] = 0x7F
		// Re-seal the checksum so the version check (not the CRC) fires.
		reseal(bad)
		_, err := Read(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})

	t.Run("resealed structural damage", func(t *testing.T) {
		// Flip bytes inside section payloads and fix the CRC: the
		// structural validators must still reject without panicking.
		rng := rand.New(rand.NewSource(99))
		rejected := 0
		for trial := 0; trial < 200; trial++ {
			bad := append([]byte(nil), data...)
			bad[8+rng.Intn(len(bad)-12)] ^= 0xFF
			reseal(bad)
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("trial %d: Read panicked: %v", trial, rec)
					}
				}()
				if _, err := Read(bytes.NewReader(bad)); err != nil {
					rejected++
				}
			}()
		}
		// Not every payload flip is semantically detectable (e.g. a name
		// character), but most structural ones are; just require no panics
		// and at least some rejections.
		if rejected == 0 {
			t.Fatalf("no resealed corruption was ever rejected")
		}
	})
}

// reseal recomputes and replaces the CRC trailer after tampering.
func reseal(data []byte) {
	crc := crc32.Checksum(data[:len(data)-4], castagnoli)
	data[len(data)-4] = byte(crc)
	data[len(data)-3] = byte(crc >> 8)
	data[len(data)-2] = byte(crc >> 16)
	data[len(data)-1] = byte(crc >> 24)
}

func TestInspect(t *testing.T) {
	g := testGraph(t)
	s := fullSnapshot(t, "figure5", g)
	data := encode(t, s)
	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Name != "figure5" || info.Vertices != int64(g.N()) || info.Edges != int64(g.M()) {
		t.Fatalf("info = %+v", info)
	}
	if !info.Named || !info.HasCore || !info.HasTree || !info.HasTruss {
		t.Fatalf("flags = %+v", info)
	}
	if info.Bytes != int64(len(data)) {
		t.Fatalf("bytes = %d, want %d", info.Bytes, len(data))
	}
	if len(info.Sections) != 10 {
		t.Fatalf("sections = %d: %+v", len(info.Sections), info.Sections)
	}
}

func TestUnknownSectionSkipped(t *testing.T) {
	// Append a section with an unknown id before the trailer; the reader
	// must skip it and still load the dataset (forward compatibility).
	g := testGraph(t)
	data := encode(t, &Snapshot{Name: "fwd", Graph: g})
	body := data[:len(data)-4]
	extra := []byte{
		0xEE, 0x00, 0x00, 0x00, // id
		0x00, 0x00, 0x00, 0x00, // reserved (v3 header)
		3, 0, 0, 0, 0, 0, 0, 0, // payload length
		'x', 'y', 'z', 0, 0, 0, 0, 0, // payload + pad to 8
	}
	body = append(body, extra...)
	body = append(body, 0, 0, 0, 0)
	reseal(body)
	got, err := Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("read with unknown section: %v", err)
	}
	checkGraphEqual(t, g, got.Graph)
}

// --- deep-equality helpers ---

func checkGraphEqual(t testing.TB, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	// slices.Equal treats nil and empty alike: an empty arena may load back
	// as nil without changing graph semantics.
	ra, rb := a.Raw(), b.Raw()
	if !slices.Equal(ra.Offsets, rb.Offsets) || !slices.Equal(ra.Adj, rb.Adj) {
		t.Fatalf("adjacency differs")
	}
	if !slices.Equal(ra.KwOffsets, rb.KwOffsets) || !slices.Equal(ra.KwData, rb.KwData) {
		t.Fatalf("keyword arenas differ")
	}
	if !slices.Equal(ra.Words, rb.Words) {
		t.Fatalf("vocabularies differ")
	}
	if !slices.Equal(ra.Names, rb.Names) {
		t.Fatalf("names differ")
	}
	if a.Named() {
		for v := int32(0); v < int32(a.N()); v++ {
			name := a.Name(v)
			if name == "" {
				continue
			}
			av, aok := a.VertexByName(name)
			bv, bok := b.VertexByName(name)
			if aok != bok || av != bv {
				t.Fatalf("name index differs at %q: (%d,%v) vs (%d,%v)", name, av, aok, bv, bok)
			}
		}
	}
}

func checkTreeEqual(t testing.TB, a, b *cltree.Tree) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.Depth() != b.Depth() {
		t.Fatalf("tree shape differs: %d/%d nodes, %d/%d depth",
			a.NumNodes(), b.NumNodes(), a.Depth(), b.Depth())
	}
	if !reflect.DeepEqual(a.CoreNumbers(), b.CoreNumbers()) {
		t.Fatalf("tree core numbers differ")
	}
	fa, fb := a.Flatten(), b.Flatten()
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("flattened trees differ")
	}
}

func checkTrussEqual(t testing.TB, g *graph.Graph, a, b *ktruss.Decomposition) {
	t.Helper()
	if b == nil {
		t.Fatalf("truss missing")
	}
	ea, ta := a.Parts()
	eb, tb := b.Parts()
	if !reflect.DeepEqual(ea, eb) || !reflect.DeepEqual(ta, tb) {
		t.Fatalf("truss decompositions differ")
	}
	g.Edges(func(u, v int32) bool {
		x, okx := a.Trussness(u, v)
		y, oky := b.Trussness(u, v)
		if okx != oky || x != y {
			t.Fatalf("trussness({%d,%d}) = (%d,%v) vs (%d,%v)", u, v, x, okx, y, oky)
		}
		return true
	})
}
