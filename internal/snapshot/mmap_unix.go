//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapped bytes.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := statSize(f)
	if err != nil {
		return nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data, nil
}

func munmap(data []byte) {
	if data != nil {
		_ = syscall.Munmap(data)
	}
}
