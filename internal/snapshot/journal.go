package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The mutation journal: the durability sidecar of the dynamic-graph
// subsystem. Snapshots are heavyweight full-state files; mutation batches
// are tiny. Rewriting a multi-megabyte snapshot per batch would make write
// throughput a function of dataset size, so instead each applied batch
// appends one framed, checksummed record to <dataset>.cxjournal, and a warm
// restart replays only the records the base snapshot predates (record
// version > snapshot version). The catalog periodically compacts: rewrite
// the snapshot at the current version, drop the journal.
//
// On-disk layout (little-endian):
//
//	magic   "CXJRNL"              6 bytes
//	version uint16                currently 1
//	records, repeated:
//	    payloadLen uint32
//	    payload    payloadLen bytes
//	    crc        uint32         CRC-32C of payload
//
// Each payload is one batch: version uint64, opCount uint32, then per op a
// kind byte and its operands. Appends are atomic-enough by construction: a
// crash mid-append leaves a truncated or checksum-failing final frame,
// which Read treats as the end of the journal (reporting how many bytes it
// dropped), never as corruption of the records before it — the same
// tail-tolerant discipline as every write-ahead log.

// JournalExt is the conventional extension for mutation journals.
const JournalExt = ".cxjournal"

const journalVersion = 1

var journalMagic = [6]byte{'C', 'X', 'J', 'R', 'N', 'L'}

// Journal op kinds (part of the format; never renumber).
const (
	JournalAddEdge    byte = 1
	JournalRemoveEdge byte = 2
	JournalAddVertex  byte = 3
)

// JournalOp is one graph edit in a journal record.
type JournalOp struct {
	Kind     byte
	U, V     int32  // edge ops
	Name     string // addVertex
	Keywords []string
}

// JournalRecord is one applied mutation batch: the dataset version the
// batch produced, and its ops in order.
type JournalRecord struct {
	Version uint64
	Ops     []JournalOp
}

// AppendJournal appends one record to the journal at path, creating the
// file (with its header) if needed, and syncs before returning so an
// acknowledged batch survives a crash.
func AppendJournal(path string, rec JournalRecord) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var out []byte
	if st.Size() == 0 {
		out = append(out, journalMagic[:]...)
		out = binary.LittleEndian.AppendUint16(out, journalVersion)
	}
	payload := encodeJournalPayload(rec)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	if _, err := f.Write(out); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

func encodeJournalPayload(rec JournalRecord) []byte {
	var p []byte
	p = binary.LittleEndian.AppendUint64(p, rec.Version)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		p = append(p, op.Kind)
		p = binary.LittleEndian.AppendUint32(p, uint32(op.U))
		p = binary.LittleEndian.AppendUint32(p, uint32(op.V))
		p = appendJournalString(p, op.Name)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(op.Keywords)))
		for _, w := range op.Keywords {
			p = appendJournalString(p, w)
		}
	}
	return p
}

func appendJournalString(p []byte, s string) []byte {
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s)))
	return append(p, s...)
}

// ReadJournal loads every intact record from the journal at path, in append
// order. A missing or empty file yields (nil, 0, nil). A truncated or
// checksum-failing tail — the signature of a crash mid-append — ends the
// read cleanly, with dropped reporting how many trailing bytes were
// discarded; a damaged header or record body is an error. The decoder is
// fully bounds-checked and never panics on arbitrary bytes.
func ReadJournal(path string) (recs []JournalRecord, dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	return DecodeJournal(data)
}

// DecodeJournal decodes journal bytes already in memory (the fuzz surface
// behind ReadJournal).
func DecodeJournal(data []byte) (recs []JournalRecord, dropped int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(journalMagic)+2 {
		return nil, 0, fmt.Errorf("journal: file too short (%d bytes)", len(data))
	}
	if string(data[:len(journalMagic)]) != string(journalMagic[:]) {
		return nil, 0, fmt.Errorf("journal: bad magic %q (not a journal file)", data[:len(journalMagic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(journalMagic):]); v != journalVersion {
		return nil, 0, fmt.Errorf("journal: unsupported version %d (this build reads version %d)", v, journalVersion)
	}
	off := len(journalMagic) + 2
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			return recs, len(rest), nil // partial frame header: crash tail
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		if plen < 0 || len(rest) < 4+plen+4 {
			return recs, len(rest), nil // partial frame: crash tail
		}
		payload := rest[4 : 4+plen]
		want := binary.LittleEndian.Uint32(rest[4+plen:])
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, len(rest), nil // torn final write: crash tail
		}
		rec, derr := decodeJournalPayload(payload)
		if derr != nil {
			// The frame checksummed clean but its body is malformed: that is
			// corruption (or a foreign writer), not a crash tail.
			return recs, 0, fmt.Errorf("journal: record %d: %w", len(recs), derr)
		}
		recs = append(recs, rec)
		off += 4 + plen + 4
	}
	return recs, 0, nil
}

func decodeJournalPayload(payload []byte) (JournalRecord, error) {
	cur := &rbuf{b: payload}
	rec := JournalRecord{Version: cur.u64()}
	n := cur.u32()
	for i := uint32(0); i < n && cur.err == nil; i++ {
		var op JournalOp
		kb := cur.bytes(1)
		if cur.err != nil {
			break
		}
		op.Kind = kb[0]
		if op.Kind != JournalAddEdge && op.Kind != JournalRemoveEdge && op.Kind != JournalAddVertex {
			return rec, fmt.Errorf("unknown op kind %d", op.Kind)
		}
		op.U = int32(cur.u32())
		op.V = int32(cur.u32())
		op.Name = readJournalString(cur)
		kws := cur.u32()
		// Each keyword costs at least 4 encoded bytes; bound before any
		// allocation so a crafted count cannot request gigabytes.
		if cur.err == nil && int(kws) > cur.remaining()/4 {
			return rec, fmt.Errorf("keyword count %d exceeds remaining payload", kws)
		}
		for j := uint32(0); j < kws && cur.err == nil; j++ {
			op.Keywords = append(op.Keywords, readJournalString(cur))
		}
		rec.Ops = append(rec.Ops, op)
	}
	if cur.err != nil {
		return rec, cur.err
	}
	if cur.remaining() != 0 {
		return rec, fmt.Errorf("%d trailing bytes after ops", cur.remaining())
	}
	return rec, nil
}

func readJournalString(cur *rbuf) string {
	n := cur.u32()
	if cur.err != nil {
		return ""
	}
	if int64(n) > int64(cur.remaining()) {
		cur.fail("journal: string of %d bytes but %d remain", n, cur.remaining())
		return ""
	}
	return string(cur.bytes(int(n)))
}
