package snapshot

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cexplorer/internal/gen"
)

// Cold-open benchmarks: what a server boot pays per dataset, per open mode.
//
//	go test -bench 'OpenFile' -benchtime 3x ./internal/snapshot
//
// The copy path decodes every section into fresh heap arrays, so its time
// and allocations grow with the graph. The mmap path stitches index
// structures over the mapping and allocates only fixed-size headers — its
// allocs/op must stay flat from the 120k-edge default to the paper-scale
// graph (CEXPLORER_PAPER_SCALE=1: 977,288 vertices, ~3.4M edges, the E7
// latency experiment's dataset size).

var openBench struct {
	once sync.Once
	path string
	size int64
	m    int // edges, for the sanity check
}

// openBenchSetup writes the benchmark snapshot file once per process. Scale
// is chosen by CEXPLORER_PAPER_SCALE: unset = the shared 40k/120k random
// graph, set = the full paper-scale synthetic DBLP.
func openBenchSetup(b *testing.B) {
	b.Helper()
	openBench.once.Do(func() {
		dir, err := os.MkdirTemp("", "cxopenbench")
		if err != nil {
			b.Fatalf("tempdir: %v", err)
		}
		var s *Snapshot
		if os.Getenv("CEXPLORER_PAPER_SCALE") != "" {
			g := gen.GenerateDBLP(gen.PaperScaleConfig()).Graph
			s = fullSnapshot(b, "paper", g)
		} else {
			benchSetup(b)
			var err error
			s, err = Decode(benchInput.snapBytes)
			if err != nil {
				b.Fatalf("decode bench snapshot: %v", err)
			}
		}
		path := filepath.Join(dir, "bench"+FileExt)
		n, err := WriteFile(path, s)
		if err != nil {
			b.Fatalf("write bench snapshot: %v", err)
		}
		openBench.path = path
		openBench.size = n
		openBench.m = s.Graph.M()
	})
	if openBench.path == "" {
		b.Fatalf("bench snapshot setup failed earlier")
	}
}

func benchOpen(b *testing.B, mode OpenMode) {
	openBenchSetup(b)
	b.SetBytes(openBench.size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, m, err := OpenFile(openBench.path, mode)
		if err != nil {
			b.Fatalf("open (%s): %v", mode, err)
		}
		if s.Graph.M() != openBench.m || s.Core == nil || s.Tree == nil || s.Truss == nil {
			b.Fatalf("open (%s) incomplete", mode)
		}
		if m != nil {
			m.Release()
		}
	}
}

func BenchmarkOpenFileCopy(b *testing.B) { benchOpen(b, OpenCopy) }

func BenchmarkOpenFileMmap(b *testing.B) {
	openBenchSetup(b)
	if _, m, err := OpenFile(openBench.path, OpenMmap); err != nil {
		b.Skipf("mmap unavailable: %v", err)
	} else {
		m.Release()
	}
	benchOpen(b, OpenMmap)
}
