package snapshot

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.cxjournal")
	recs := []JournalRecord{
		{Version: 1, Ops: []JournalOp{{Kind: JournalAddEdge, U: 0, V: 7}}},
		{Version: 2, Ops: []JournalOp{
			{Kind: JournalAddVertex, Name: "alice", Keywords: []string{"graphs", "cores"}},
			{Kind: JournalAddEdge, U: 9, V: 3},
		}},
		{Version: 3, Ops: []JournalOp{{Kind: JournalRemoveEdge, U: 0, V: 7}}},
	}
	for _, r := range recs {
		if err := AppendJournal(path, r); err != nil {
			t.Fatal(err)
		}
	}
	got, dropped, err := ReadJournal(path)
	if err != nil || dropped != 0 {
		t.Fatalf("read: %v (dropped %d)", err, dropped)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Version != recs[i].Version || len(got[i].Ops) != len(recs[i].Ops) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
		for j := range recs[i].Ops {
			w, g := recs[i].Ops[j], got[i].Ops[j]
			if w.Kind != g.Kind || w.U != g.U || w.V != g.V || w.Name != g.Name ||
				len(w.Keywords) != len(g.Keywords) {
				t.Fatalf("record %d op %d: %+v != %+v", i, j, g, w)
			}
		}
	}
}

func TestJournalMissingAndEmpty(t *testing.T) {
	recs, dropped, err := ReadJournal(filepath.Join(t.TempDir(), "absent.cxjournal"))
	if err != nil || recs != nil || dropped != 0 {
		t.Fatalf("missing file: recs=%v dropped=%d err=%v", recs, dropped, err)
	}
}

// TestJournalCrashTail simulates a crash mid-append: every truncation of a
// valid journal must decode cleanly, yielding exactly the records whose
// frames survived whole and reporting the rest as a dropped tail.
func TestJournalCrashTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.cxjournal")
	for v := uint64(1); v <= 3; v++ {
		if err := AppendJournal(path, JournalRecord{Version: v, Ops: []JournalOp{
			{Kind: JournalAddEdge, U: int32(v), V: int32(v + 1)},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := DecodeJournal(data)
	if err != nil || len(full) != 3 {
		t.Fatalf("full decode: %v (%d records)", err, len(full))
	}
	for cut := len(journalMagic) + 2; cut < len(data); cut++ {
		recs, _, err := DecodeJournal(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if len(recs) > 3 {
			t.Fatalf("cut at %d: %d records from thin air", cut, len(recs))
		}
		for i, r := range recs {
			if r.Version != uint64(i+1) {
				t.Fatalf("cut at %d: record %d has version %d", cut, i, r.Version)
			}
		}
	}

	// A flipped byte inside the final frame must drop exactly that frame.
	dam := append([]byte(nil), data...)
	dam[len(dam)-6] ^= 0xff
	recs, droppedBytes, err := DecodeJournal(dam)
	if err != nil {
		t.Fatalf("damaged tail: %v", err)
	}
	if len(recs) != 2 || droppedBytes == 0 {
		t.Fatalf("damaged tail: %d records, %d dropped bytes", len(recs), droppedBytes)
	}
}
