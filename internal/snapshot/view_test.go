package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unsafe"
)

// encodeFormat is encode with an explicit format version.
func encodeFormat(t testing.TB, s *Snapshot, format uint16) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteFormat(&buf, s, format); err != nil {
		t.Fatalf("write v%d: %v", format, err)
	}
	return buf.Bytes()
}

// checkSnapshotEqual compares everything a snapshot carries, regardless of
// which decoder produced either side.
func checkSnapshotEqual(t testing.TB, want, got *Snapshot) {
	t.Helper()
	if want.Name != got.Name || want.Version != got.Version {
		t.Fatalf("identity differs: (%q, v%d) vs (%q, v%d)", want.Name, want.Version, got.Name, got.Version)
	}
	checkGraphEqual(t, want.Graph, got.Graph)
	if want.Core != nil && !reflect.DeepEqual(want.Core, got.Core) {
		t.Fatalf("core numbers differ")
	}
	if want.Tree != nil {
		checkTreeEqual(t, want.Tree, got.Tree)
	}
	if want.Truss != nil {
		checkTrussEqual(t, want.Graph, want.Truss, got.Truss)
	}
}

func TestDecodeViewRoundTrip(t *testing.T) {
	g := testGraph(t)
	s := fullSnapshot(t, "figure5", g)
	data := encode(t, s)

	view, err := DecodeView(data)
	if err != nil {
		t.Fatalf("view decode: %v", err)
	}
	if !view.ZeroCopy || view.Format != FormatV3 {
		t.Fatalf("ZeroCopy=%v Format=%d, want true/v%d", view.ZeroCopy, view.Format, FormatV3)
	}
	if !view.Graph.Borrowed() {
		t.Fatalf("view graph not marked borrowed")
	}
	checkSnapshotEqual(t, s, view)

	// The same bytes through the copy decoder agree too, and own their
	// memory.
	copied, err := Decode(data)
	if err != nil {
		t.Fatalf("copy decode: %v", err)
	}
	if copied.ZeroCopy || copied.Graph.Borrowed() {
		t.Fatalf("copy decode produced a borrowed snapshot")
	}
	checkSnapshotEqual(t, view, copied)
}

func TestDecodeViewAliasesInput(t *testing.T) {
	g := randomAttributed(t, 200, 900, 3)
	data := encode(t, fullSnapshot(t, "alias", g))
	view, err := DecodeView(data)
	if err != nil {
		t.Fatalf("view decode: %v", err)
	}
	raw := view.Graph.Raw()
	lo := uintptr(unsafe.Pointer(&data[0]))
	hi := lo + uintptr(len(data))
	inside := func(p unsafe.Pointer) bool {
		u := uintptr(p)
		return u >= lo && u < hi
	}
	if !inside(unsafe.Pointer(&raw.Adj[0])) {
		t.Fatalf("adjacency was copied, not viewed")
	}
	if !inside(unsafe.Pointer(&raw.Offsets[0])) {
		t.Fatalf("offsets were copied, not viewed")
	}
	if !inside(unsafe.Pointer(unsafe.StringData(raw.Names[0]))) {
		t.Fatalf("name contents were copied, not viewed")
	}
	if bb := view.Graph.BorrowedBytes(); bb <= 0 || bb >= int64(len(data)) {
		t.Fatalf("BorrowedBytes = %d for a %d-byte file", bb, len(data))
	}
}

func TestDecodeViewAlignmentInvariant(t *testing.T) {
	// Every section payload of a v3 file must start 8-aligned — that is the
	// layout property the whole zero-copy path rests on.
	data := encode(t, fullSnapshot(t, "aligned", randomAttributed(t, 137, 641, 9)))
	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !info.ZeroCopy {
		t.Fatalf("v3 file not zero-copy eligible: %s", info.ZeroCopyReason)
	}
	for _, sec := range info.Sections {
		if sec.Offset%sectionAlign != 0 || !sec.Aligned {
			t.Fatalf("section %s payload at offset %d not %d-aligned", sec.Name, sec.Offset, sectionAlign)
		}
	}
}

func TestWriteFormatV2RoundTrip(t *testing.T) {
	g := testGraph(t)
	s := fullSnapshot(t, "legacy", g)
	data := encodeFormat(t, s, FormatV2)

	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	if got.Format != FormatV2 {
		t.Fatalf("Format = %d, want %d", got.Format, FormatV2)
	}
	checkSnapshotEqual(t, s, got)

	// The legacy layout must refuse the view path with the fallback
	// sentinel, never a hard error.
	if _, err := DecodeView(data); !errors.Is(err, ErrNotZeroCopy) {
		t.Fatalf("DecodeView(v2) = %v, want ErrNotZeroCopy", err)
	}

	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("inspect v2: %v", err)
	}
	if info.ZeroCopy || info.ZeroCopyReason == "" {
		t.Fatalf("v2 inspect: ZeroCopy=%v reason=%q", info.ZeroCopy, info.ZeroCopyReason)
	}
}

func TestFormatsDecodeIdentically(t *testing.T) {
	g := randomAttributed(t, 250, 1100, 11)
	s := fullSnapshot(t, "both", g)
	v2, err := Decode(encodeFormat(t, s, FormatV2))
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	v3, err := Decode(encodeFormat(t, s, FormatV3))
	if err != nil {
		t.Fatalf("decode v3: %v", err)
	}
	checkSnapshotEqual(t, v2, v3)
}

func TestViewPairs(t *testing.T) {
	if _, err := viewPairs([]int32{1, 2, 3}); err == nil {
		t.Fatalf("odd-length edge table accepted")
	}
	ps, err := viewPairs([]int32{1, 2, 3, 4})
	if err != nil || len(ps) != 2 || ps[0] != [2]int32{1, 2} || ps[1] != [2]int32{3, 4} {
		t.Fatalf("viewPairs = %v, %v", ps, err)
	}
}

// writeTemp writes bytes to a fresh file under t.TempDir.
func writeTemp(t testing.TB, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

func TestOpenFileModes(t *testing.T) {
	g := testGraph(t)
	s := fullSnapshot(t, "modes", g)
	v3path := writeTemp(t, "v3.cxsnap", encode(t, s))
	v2path := writeTemp(t, "v2.cxsnap", encodeFormat(t, s, FormatV2))

	t.Run("copy", func(t *testing.T) {
		got, m, err := OpenFile(v3path, OpenCopy)
		if err != nil || m != nil {
			t.Fatalf("copy open: snapshot=%v mapping=%v err=%v", got != nil, m, err)
		}
		if got.ZeroCopy {
			t.Fatalf("copy open returned a borrowed snapshot")
		}
		checkSnapshotEqual(t, s, got)
	})
	t.Run("mmap-v3", func(t *testing.T) {
		got, m, err := OpenFile(v3path, OpenMmap)
		if err != nil {
			t.Skipf("mmap unavailable: %v", err) // non-unix stub
		}
		if m == nil || !got.ZeroCopy {
			t.Fatalf("mmap open: mapping=%v ZeroCopy=%v", m, got.ZeroCopy)
		}
		checkSnapshotEqual(t, s, got)
		m.Release()
	})
	t.Run("auto-v3", func(t *testing.T) {
		got, m, err := OpenFile(v3path, OpenAuto)
		if err != nil {
			t.Fatalf("auto open: %v", err)
		}
		checkSnapshotEqual(t, s, got)
		if m != nil {
			m.Release()
		}
	})
	t.Run("auto-v2-falls-back-to-copy", func(t *testing.T) {
		got, m, err := OpenFile(v2path, OpenAuto)
		if err != nil {
			t.Fatalf("auto open v2: %v", err)
		}
		if m != nil || got.ZeroCopy {
			t.Fatalf("auto open of a v2 file must copy-decode (mapping=%v)", m)
		}
		checkSnapshotEqual(t, s, got)
	})
	t.Run("mmap-v2-fails", func(t *testing.T) {
		if _, m, err := OpenFile(v2path, OpenMmap); err == nil {
			if m != nil {
				m.Release()
			}
			t.Fatalf("strict mmap open of a v2 file succeeded")
		} else if !errors.Is(err, ErrNotZeroCopy) {
			t.Fatalf("strict mmap open of v2: %v, want ErrNotZeroCopy", err)
		}
	})
	t.Run("unknown-mode", func(t *testing.T) {
		if _, _, err := OpenFile(v3path, OpenMode("weird")); err == nil {
			t.Fatalf("unknown mode accepted")
		}
	})
}

func TestOpenFileCorruption(t *testing.T) {
	data := encode(t, fullSnapshot(t, "corrupt", testGraph(t)))

	t.Run("truncated-tail", func(t *testing.T) {
		path := writeTemp(t, "trunc.cxsnap", data[:len(data)-9])
		for _, mode := range []OpenMode{OpenCopy, OpenAuto, OpenMmap} {
			if got, m, err := OpenFile(path, mode); err == nil {
				if m != nil {
					m.Release()
				}
				t.Fatalf("mode %s opened a truncated file: %v", mode, got.Name)
			} else if errors.Is(err, ErrNotZeroCopy) {
				t.Fatalf("mode %s mapped truncation to the fallback sentinel: %v", mode, err)
			}
		}
	})
	t.Run("crc-flip", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[len(bad)/2] ^= 0x40 // payload bit; the trailer no longer matches
		path := writeTemp(t, "flip.cxsnap", bad)
		for _, mode := range []OpenMode{OpenCopy, OpenAuto, OpenMmap} {
			if got, m, err := OpenFile(path, mode); err == nil {
				if m != nil {
					m.Release()
				}
				t.Fatalf("mode %s opened a corrupt file: %v", mode, got.Name)
			} else if errors.Is(err, ErrNotZeroCopy) {
				t.Fatalf("mode %s mapped corruption to the fallback sentinel: %v", mode, err)
			}
		}
	})
	t.Run("empty-file", func(t *testing.T) {
		path := writeTemp(t, "empty.cxsnap", nil)
		for _, mode := range []OpenMode{OpenCopy, OpenAuto, OpenMmap} {
			if _, m, err := OpenFile(path, mode); err == nil {
				if m != nil {
					m.Release()
				}
				t.Fatalf("mode %s opened an empty file", mode)
			}
		}
	})
	t.Run("missing-file", func(t *testing.T) {
		for _, mode := range []OpenMode{OpenCopy, OpenAuto, OpenMmap} {
			if _, _, err := OpenFile(filepath.Join(t.TempDir(), "nope.cxsnap"), mode); err == nil {
				t.Fatalf("mode %s opened a missing file", mode)
			}
		}
	})
}

func TestMappingRefcount(t *testing.T) {
	path := writeTemp(t, "ref.cxsnap", encode(t, fullSnapshot(t, "ref", testGraph(t))))
	_, m, err := OpenFile(path, OpenMmap)
	if err != nil {
		t.Skipf("mmap unavailable: %v", err)
	}
	if m.Size() <= 0 {
		t.Fatalf("mapping size = %d", m.Size())
	}
	if !m.Retain() {
		t.Fatalf("retain on a live mapping failed")
	}
	m.Release() // the extra retain
	m.Release() // the OpenFile reference; count hits zero, pages unmapped
	if m.Retain() {
		t.Fatalf("retain succeeded on a dead mapping")
	}
}

func TestParseOpenMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want OpenMode
		ok   bool
	}{
		{"auto", OpenAuto, true},
		{"mmap", OpenMmap, true},
		{"copy", OpenCopy, true},
		{"", OpenAuto, true},
		{"MMAP", "", false},
		{"zero-copy", "", false},
	} {
		got, err := ParseOpenMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("ParseOpenMode(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("ParseOpenMode(%q) accepted", tc.in)
		}
	}
}
