// Package cexplorer is an open-source reproduction of "C-Explorer: Browsing
// Communities in Large Graphs" (Fang, Cheng, Luo, Hu, Huang — PVLDB 10(12),
// VLDB 2017): an online, interactive community-retrieval platform for large
// attributed graphs.
//
// # What it does
//
// C-Explorer answers community search (CS) queries — "give me the community
// of this vertex" — over graphs whose vertices carry keywords. Its engine is
// the ACQ query (Fang et al., PVLDB 2016): the returned community is a
// connected subgraph containing the query vertex q in which every member has
// at least k neighbors inside the community (structure cohesiveness) and all
// members share a maximum-size subset of q's keywords (keyword
// cohesiveness). Queries run against the CL-tree index, a linear-space
// organization of the graph's nested k-core hierarchy with per-node inverted
// keyword lists.
//
// Alongside ACQ, the platform ships the CS baselines Global (Sozio &
// Gionis), Local (Cui et al.), k-truss community search (Huang et al.), and
// the content+link community-detection method CODICIL (Ruan et al.), plus an
// analysis module (CPJ/CMF quality metrics, statistics), force-directed
// layout, and a browser/server front end.
//
// # Quick start
//
//	g := cexplorer.Figure5()                    // the paper's example graph
//	eng := cexplorer.NewEngine(cexplorer.BuildIndex(g))
//	q, _ := g.VertexByName("A")
//	comms, _ := eng.Search(q, 2, nil, cexplorer.Dec)
//	// comms[0].Vertices == {A, C, D}, sharing keywords {x, y}
//
// Or drive everything through the Figure-4 API:
//
//	exp := cexplorer.NewExplorer()
//	exp.AddGraph("dblp", cexplorer.GenerateDBLP(cexplorer.DefaultDBLPConfig()).Graph)
//	comms, _ := exp.Search(ctx, "dblp", "ACQ", cexplorer.Query{Vertices: []int32{0}, K: 4})
//
// See the examples/ directory for runnable walkthroughs of Figures 1, 2,
// and 6, and cmd/cexplorer for the web server.
//
// # Contexts and typed errors
//
// Every Explorer query method (Search, Detect, Analyze, Display, Explore,
// ExploreStep) takes a context.Context as its first argument, and the
// CSAlgorithm/CDAlgorithm plugin interfaces receive it too. Cancellation
// propagates into the algorithm kernels — the ACQ engine polls per
// candidate verification, the core/truss decompositions every few thousand
// vertices/edges — so canceling the context (or letting its deadline
// expire) stops the computation promptly rather than after it finishes.
//
// Failures wrap typed sentinels: ErrDatasetNotFound, ErrVertexNotFound,
// ErrSessionNotFound, ErrUnknownAlgorithm, ErrInvalidQuery, ErrCanceled,
// ErrTimeout, and api.ErrOverloaded (admission control shed the request).
// Branch with errors.Is; the HTTP layer maps them onto 404 / 400 / 429 /
// 499 / 504 with a JSON error envelope {"error", "code"}.
//
// # API versioning policy
//
// The HTTP surface is versioned by path. The /api/v1 tree is the stable
// contract: resource-oriented routes (datasets, vertices, exploration
// sessions as sub-resources), limit/offset pagination with totals on
// community lists, and the typed error envelope. Within v1, changes are
// additive only — new endpoints, new optional request fields, new response
// fields; existing fields never change meaning or disappear. Breaking
// changes require a new version prefix (/api/v2) served alongside v1. The
// pre-v1 flat routes (/api/search, /api/graphs, ...) are maintained as
// thin aliases of the v1 handler cores for the embedded UI and existing
// clients; new integrations should target /api/v1. The contract is pinned
// by the TestV1* suite (run in CI with -count=2) and documented in
// openapi.yaml at the repository root.
//
// # Concurrency model
//
// The read path is built for parallel query serving. A Graph and a built
// Index (CL-tree) are immutable and safely shared by any number of
// goroutines. An Engine is the opposite: it carries per-query scratch (the
// peeler's epoch-stamped membership arrays, candidate buffers, interned
// keyword-set IDs) and must be confined to one goroutine at a time.
//
// There are two ways to honor that contract:
//
//   - Engine-per-goroutine: call NewEngine(idx) in each worker. Engines are
//     cheap relative to the index, but construction is O(n) in the graph
//     size, so per-request construction wastes work under load.
//   - Pooled engines (what the server does): a Dataset keeps a sync.Pool of
//     warm engines over its CL-tree. Handlers call AcquireEngine /
//     ReleaseEngine, so concurrent searches on one dataset reuse scratch
//     that is already sized to the graph and run fully in parallel — the
//     dataset's lazy indexes are built once behind sync.Once, and reads
//     after that take no lock.
//
// The HTTP layer (internal/server) additionally bounds concurrent search
// execution with a worker limit (default 2×GOMAXPROCS, -search.limit on the
// cexplorer command), deadline-bounds search-class requests when
// -search.timeout is set (the budget covers queue wait plus computation),
// and reports request-level counters at /api/stats.
//
// # Parallel index construction
//
// The write path — building indexes — scales with cores too. A dataset's
// three indexes (CL-tree, core numbers, truss decomposition) build
// concurrently under Dataset.BuildIndexes, so the cold-build wall time is
// the slowest individual build rather than their sum; the per-index
// sync.Once guards make the eager build safe to race with lazy builders on
// the query path. The truss engine itself is parallel and CSR-native: the
// graph exposes a canonical edge-ID surface (internal/graph EdgeIDs), the
// degeneracy-oriented triangle counting shards vertex chunks across a
// worker pool with per-worker counters merged afterwards, and the peel loop
// is a bucket queue over materialized triangle lists — O(m + Σ support)
// with no hash map and no heap. Snapshot section encode/decode parallelizes
// across the same worker pool (sections are independent byte ranges; the
// file bytes and trailing CRC are identical to a serial write). One knob
// governs all of it: -index.workers on the cexplorer command (default
// GOMAXPROCS), reported together with per-index build wall times at
// /api/stats.
//
// # Persistence & warm restarts
//
// Datasets persist as snapshots (internal/snapshot): one versioned,
// checksummed binary file carrying the graph's CSR arrays, keyword arenas,
// vocabulary, and names together with the precomputed indexes — core
// numbers, the CL-tree in arena form with its inverted keyword lists, and
// the truss decomposition. Every payload is a length-prefixed contiguous
// array, so opening a snapshot is sequential bulk reads plus pointer
// stitching; a Dataset opened this way (OpenSnapshot) has its lazy index
// builders pre-seeded and never pays construction again.
//
// The server keeps a disk-backed catalog when started with -data.dir:
// uploads persist atomically via temp-file + rename, every snapshot in the
// directory loads at boot, GET /api/graphs reports per-dataset provenance
// and resident indexes, and GET /api/stats accumulates snapshot
// load/persist timings. Offline precomputation lives in the
// `cexplorer snapshot build` and `cexplorer snapshot inspect` subcommands.
//
// # Serve-time speed layer
//
// Query serving sits behind a result cache (internal/servecache) keyed by
// (dataset, version, canonical query): because a search is a pure function
// of the immutable version it resolves, a mutation's version bump makes
// every stale entry unreachable with no invalidation protocol at all.
// Concurrent requests for the same key coalesce through singleflight (one
// leader computes, followers share the answer; a leader's own cancellation
// promotes a follower instead of poisoning the key), deterministic request
// failures are negative-cached, and an optional per-dataset admission bound
// (-shed.inflight) sheds excess cache-miss computations immediately with
// the retryable 429 "overloaded" envelope, keeping the served tail near the
// intrinsic service time under overload. On the write side a
// MutationBatcher (internal/api) coalesces concurrent single-op mutation
// requests into one atomic engine apply and one journal fsync (-batch.size,
// -batch.wait), with per-submission fallback isolation when a combined
// batch fails. Cache and batcher counters appear at /api/stats; the
// open-loop load generator (internal/loadgen, cmd/loadgen) measures the
// whole stack's latency distribution from outside.
//
// # Dynamic graphs & versioning
//
// Datasets are versioned: a Dataset value is one immutable version (graph
// plus indexes), and a mutation batch (api.Mutation via Explorer.Mutate, or
// POST /api/v1/datasets/{name}/mutations) derives the successor — core
// numbers maintained with the incremental subcore kernels (internal/kcore),
// the CL-tree repaired locally (internal/cltree), the truss invalidated to
// rebuild lazily. Publishing is one atomic swap: requests in flight keep
// the exact version they resolved, exploration sessions stay pinned to the
// version they were created on, and new requests see the successor. The
// version counter persists in snapshots, and with a catalog configured
// every acknowledged batch is journaled (.cxjournal, checksummed,
// tail-tolerant) so a warm restart replays exactly the batches the snapshot
// predates; the catalog compacts journals into fresh snapshots once they
// grow. The equivalence harness (internal/dyntest) holds incremental
// maintenance bit-compatible with from-scratch rebuilds: core numbers,
// CL-tree communities, and ACQ answers are asserted identical after every
// random mutation batch, with failing op streams shrunk to minimal repros.
//
// # Replication
//
// The serving stack scales reads horizontally with journal shipping
// (internal/repl). A primary publishes every applied batch — direct,
// coalesced, or replayed — into a per-dataset in-memory ring of CXJRNL
// frames and serves them over long-polling HTTP; sequence numbers are
// dataset versions, so one counter is both replication cursor and
// read-your-writes token. Replicas bootstrap from the primary's snapshot
// stream, tail the journal, and apply records through Explorer.Mutate —
// the same incremental maintenance, minus batching and local journaling —
// verifying each record lands on the exact version the primary published.
// Epoch fencing (409 epoch_fenced) makes every discontinuity — primary
// restart, buffer trim, re-upload, version gap — a forced re-bootstrap
// rather than a silent divergence. A consistent-hashing router fronts the
// fleet: writes to the primary, reads fanned across replicas with stable
// per-dataset affinity (keeping result caches hot) and failover through
// the ring to the primary. Read-your-writes is the X-CExplorer-Min-Version
// header: a lagging replica waits, then answers 503 replica_lagging, which
// the router converts into forwarding. Convergence — replica bit-equal to
// primary at every version, across fences and restarts — is proven by the
// dyntest oracles in internal/repl's test suite.
package cexplorer
