// Package cexplorer is an open-source reproduction of "C-Explorer: Browsing
// Communities in Large Graphs" (Fang, Cheng, Luo, Hu, Huang — PVLDB 10(12),
// VLDB 2017): an online, interactive community-retrieval platform for large
// attributed graphs.
//
// # What it does
//
// C-Explorer answers community search (CS) queries — "give me the community
// of this vertex" — over graphs whose vertices carry keywords. Its engine is
// the ACQ query (Fang et al., PVLDB 2016): the returned community is a
// connected subgraph containing the query vertex q in which every member has
// at least k neighbors inside the community (structure cohesiveness) and all
// members share a maximum-size subset of q's keywords (keyword
// cohesiveness). Queries run against the CL-tree index, a linear-space
// organization of the graph's nested k-core hierarchy with per-node inverted
// keyword lists.
//
// Alongside ACQ, the platform ships the CS baselines Global (Sozio &
// Gionis), Local (Cui et al.), k-truss community search (Huang et al.), and
// the content+link community-detection method CODICIL (Ruan et al.), plus an
// analysis module (CPJ/CMF quality metrics, statistics), force-directed
// layout, and a browser/server front end.
//
// # Quick start
//
//	g := cexplorer.Figure5()                    // the paper's example graph
//	eng := cexplorer.NewEngine(cexplorer.BuildIndex(g))
//	q, _ := g.VertexByName("A")
//	comms, _ := eng.Search(q, 2, nil, cexplorer.Dec)
//	// comms[0].Vertices == {A, C, D}, sharing keywords {x, y}
//
// Or drive everything through the Figure-4 API:
//
//	exp := cexplorer.NewExplorer()
//	exp.AddGraph("dblp", cexplorer.GenerateDBLP(cexplorer.DefaultDBLPConfig()).Graph)
//	comms, _ := exp.Search("dblp", "ACQ", cexplorer.Query{Vertices: []int32{0}, K: 4})
//
// See the examples/ directory for runnable walkthroughs of Figures 1, 2,
// and 6, and cmd/cexplorer for the web server.
package cexplorer
